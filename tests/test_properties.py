"""Property-based tests (hypothesis) on the core invariants.

These tests generate random instances and random schedules of execution and
assert the structural invariants that every component of the library must
preserve:

* every simulation produces a valid, complete schedule whose completion times
  match the engine's bookkeeping;
* stretch values are always >= 1;
* the off-line LP optimum lower-bounds every heuristic;
* Lemma 1 transformations preserve or improve completion times;
* degradations are always >= 1 and the best heuristic scores exactly 1.
"""

from __future__ import annotations


import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.metrics import normalize_by_best, stretches
from repro.core.platform import Machine, Platform
from repro.core.transform import (
    divisible_schedule_to_uniprocessor,
    equivalent_uniprocessor_instance,
    uniprocessor_schedule_to_divisible,
)
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

job_sizes = st.floats(min_value=0.2, max_value=20.0, allow_nan=False, allow_infinity=False)
gaps = st.floats(min_value=0.0, max_value=3.0, allow_nan=False, allow_infinity=False)
cycle_times = st.floats(min_value=0.2, max_value=3.0, allow_nan=False, allow_infinity=False)


@st.composite
def uniform_instances(draw, max_jobs: int = 6, max_machines: int = 3) -> Instance:
    """Random uniform instances (every machine hosts the single databank)."""
    n_machines = draw(st.integers(min_value=1, max_value=max_machines))
    speeds = draw(st.lists(cycle_times, min_size=n_machines, max_size=n_machines))
    platform = Platform.uniform(speeds, databanks=["db"])
    n_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    sizes = draw(st.lists(job_sizes, min_size=n_jobs, max_size=n_jobs))
    deltas = draw(st.lists(gaps, min_size=n_jobs, max_size=n_jobs))
    releases = np.cumsum(deltas)
    jobs = [
        Job(i, release=float(r), size=float(s), databank="db")
        for i, (s, r) in enumerate(zip(sizes, releases))
    ]
    return Instance(jobs, platform)


@st.composite
def restricted_instances(draw, max_jobs: int = 6) -> Instance:
    """Random instances with two databanks and partial replication."""
    cycle_a = draw(cycle_times)
    cycle_b = draw(cycle_times)
    cycle_c = draw(cycle_times)
    platform = Platform(
        [
            Machine(0, cycle_a, 0, frozenset({"a"})),
            Machine(1, cycle_b, 1, frozenset({"a", "b"})),
            Machine(2, cycle_c, 2, frozenset({"b"})),
        ]
    )
    n_jobs = draw(st.integers(min_value=1, max_value=max_jobs))
    sizes = draw(st.lists(job_sizes, min_size=n_jobs, max_size=n_jobs))
    deltas = draw(st.lists(gaps, min_size=n_jobs, max_size=n_jobs))
    banks = draw(st.lists(st.sampled_from(["a", "b"]), min_size=n_jobs, max_size=n_jobs))
    releases = np.cumsum(deltas)
    jobs = [
        Job(i, release=float(r), size=float(s), databank=bank)
        for i, (s, r, bank) in enumerate(zip(sizes, releases, banks))
    ]
    return Instance(jobs, platform)


FAST_KEYS = ["fcfs", "srpt", "swrpt", "spt", "bender02", "mct", "mct-div"]


# ---------------------------------------------------------------------------
# Simulation invariants
# ---------------------------------------------------------------------------


class TestSimulationInvariants:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=restricted_instances(), key=st.sampled_from(FAST_KEYS))
    def test_schedules_valid_and_complete(self, instance, key):
        result = simulate(instance, make_scheduler(key))
        assert result.schedule.violations(instance) == []
        assert set(result.completions) == set(instance.jobs.ids())
        # Completion times derived from the schedule match the engine's.
        schedule_completions = result.schedule.completion_times()
        for job_id, completion in result.completions.items():
            assert schedule_completions[job_id] == pytest.approx(completion, rel=1e-6, abs=1e-6)

    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=restricted_instances(), key=st.sampled_from(FAST_KEYS))
    def test_stretches_at_least_one(self, instance, key):
        result = simulate(instance, make_scheduler(key))
        for value in result.stretches().values():
            assert value >= 1.0 - 1e-6

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances())
    def test_fcfs_max_flow_no_worse_than_srpt_et_al(self, instance):
        fcfs = simulate(instance, make_scheduler("fcfs")).max_flow
        for key in ("srpt", "swrpt", "spt"):
            assert fcfs <= simulate(instance, make_scheduler(key)).max_flow + 1e-6

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances())
    def test_srpt_sum_flow_no_worse_than_others(self, instance):
        srpt = simulate(instance, make_scheduler("srpt")).sum_flow
        for key in ("fcfs", "swrpt", "spt"):
            assert srpt <= simulate(instance, make_scheduler(key)).sum_flow + 1e-5


# ---------------------------------------------------------------------------
# LP invariants
# ---------------------------------------------------------------------------


class TestLPInvariants:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=restricted_instances(max_jobs=5))
    def test_offline_optimum_lower_bounds_heuristics(self, instance):
        optimum = minimize_max_weighted_flow(problem_from_instance(instance)).objective
        assert optimum >= 1.0 - 1e-6  # a stretch below 1 is impossible
        for key in ("srpt", "swrpt", "mct"):
            result = simulate(instance, make_scheduler(key))
            assert result.max_stretch >= optimum - 1e-6

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=restricted_instances(max_jobs=5))
    def test_lp_allocation_is_complete(self, instance):
        problem = problem_from_instance(instance)
        solution = minimize_max_weighted_flow(problem)
        for job in problem.jobs:
            assert solution.work_for_job(job.job_id) == pytest.approx(
                job.remaining_work, rel=1e-5
            )


# ---------------------------------------------------------------------------
# Lemma 1 invariants
# ---------------------------------------------------------------------------


class TestLemma1Invariants:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances(), key=st.sampled_from(["srpt", "swrpt", "fcfs"]))
    def test_forward_transformation_never_increases_completions(self, instance, key):
        result = simulate(instance, make_scheduler(key))
        equivalent = equivalent_uniprocessor_instance(instance)
        projected = divisible_schedule_to_uniprocessor(result.schedule, instance)
        assert projected.violations(equivalent) == []
        for job in instance.jobs:
            assert projected.completion_time(job.job_id) <= result.completions[job.job_id] + 1e-6

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances(), key=st.sampled_from(["srpt", "swrpt"]))
    def test_reverse_transformation_preserves_completions(self, instance, key):
        equivalent = equivalent_uniprocessor_instance(instance)
        uni = simulate(equivalent, make_scheduler(key))
        lifted = uniprocessor_schedule_to_divisible(uni.schedule, instance)
        assert lifted.violations(instance) == []
        for job in instance.jobs:
            assert lifted.completion_time(job.job_id) == pytest.approx(
                uni.completions[job.job_id], rel=1e-9, abs=1e-9
            )

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances(), key=st.sampled_from(["srpt", "swrpt", "fcfs"]))
    def test_priority_heuristics_equal_their_uniprocessor_analogue(self, instance, key):
        """On uniform platforms the greedy rule reproduces the uni-processor schedule."""
        multi = simulate(instance, make_scheduler(key))
        equivalent = equivalent_uniprocessor_instance(instance)
        uni = simulate(equivalent, make_scheduler(key))
        for job in instance.jobs:
            assert multi.completions[job.job_id] == pytest.approx(
                uni.completions[job.job_id], rel=1e-6, abs=1e-6
            )


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------


class TestMetricInvariants:
    @settings(max_examples=30, deadline=None)
    @given(
        values=st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.1, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=6,
        )
    )
    def test_normalize_by_best_properties(self, values):
        normalized = normalize_by_best(values)
        assert min(normalized.values()) == pytest.approx(1.0)
        for name in values:
            assert normalized[name] >= 1.0 - 1e-12

    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(instance=uniform_instances())
    def test_stretch_lower_bound_from_completions(self, instance):
        """Any completion profile that respects physics has stretches >= 1."""
        result = simulate(instance, make_scheduler("srpt"))
        values = stretches(instance, result.completions)
        assert all(v >= 1.0 - 1e-9 for v in values.values())
