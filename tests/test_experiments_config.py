"""Tests for the experiment configuration module."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.experiments.config import (
    PAPER_AVAILABILITIES,
    PAPER_DATABANKS,
    PAPER_DENSITIES,
    PAPER_SITES,
    ExperimentConfig,
    figure3_configurations,
    paper_configurations,
    small_configurations,
)


class TestExperimentConfig:
    def make(self, **overrides) -> ExperimentConfig:
        defaults = dict(
            name="test",
            n_clusters=3,
            n_databanks=3,
            availability=0.6,
            density=1.0,
        )
        defaults.update(overrides)
        return ExperimentConfig(**defaults)

    def test_specs_derived(self):
        config = self.make(window=120.0, max_jobs=30)
        platform_spec = config.platform_spec()
        workload_spec = config.workload_spec()
        assert platform_spec.n_clusters == 3
        assert platform_spec.availability == 0.6
        assert workload_spec.density == 1.0
        assert workload_spec.window == 120.0
        assert workload_spec.max_jobs == 30

    def test_scaled_copy(self):
        config = self.make(window=900.0)
        scaled = config.scaled(window=30.0, max_jobs=10)
        assert scaled.window == 30.0
        assert scaled.max_jobs == 10
        assert scaled.name == config.name
        assert config.window == 900.0  # original untouched

    def test_as_dict_round_trip(self):
        config = self.make()
        data = config.as_dict()
        assert data["n_clusters"] == 3
        assert data["density"] == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            self.make(n_clusters=0)
        with pytest.raises(ModelError):
            self.make(availability=1.5)
        with pytest.raises(ModelError):
            self.make(density=0.0)

    def test_solver_backend_default_and_validation(self):
        # 'auto' became the default once the campaign-scale A/B gate
        # (benchmarks/bench_campaign.py) confirmed the equivalence margins;
        # 'scipy' remains the bit-stable escape hatch.
        config = self.make()
        assert config.solver_backend == "auto"
        assert config.as_dict()["solver_backend"] == "auto"
        assert self.make(solver_backend="highs").solver_backend == "highs"
        assert self.make(solver_backend="scipy").solver_backend == "scipy"
        with pytest.raises(ModelError):
            self.make(solver_backend="cplex")

    def test_solver_backend_reaches_lp_schedulers(self):
        config = self.make(solver_backend="auto")
        online = config.scheduler_options_for("online")
        assert online["solver_backend"] == "auto"
        assert online["policy"] == "on-arrival"
        assert config.scheduler_options_for("offline") == {"solver_backend": "auto"}
        assert config.scheduler_options_for("swrpt") == {}


class TestPaperDesign:
    def test_full_factorial_size(self):
        configs = paper_configurations()
        assert len(configs) == 162
        assert len({c.name for c in configs}) == 162

    def test_factor_levels(self):
        configs = paper_configurations()
        assert {c.n_clusters for c in configs} == set(PAPER_SITES)
        assert {c.n_databanks for c in configs} == set(PAPER_DATABANKS)
        assert {c.availability for c in configs} == set(PAPER_AVAILABILITIES)
        assert {c.density for c in configs} == set(PAPER_DENSITIES)

    def test_scaling_options_propagate(self):
        configs = paper_configurations(window=30.0, max_jobs=10)
        assert all(c.window == 30.0 and c.max_jobs == 10 for c in configs)

    def test_subset_design(self):
        configs = paper_configurations(sites=(3,), densities=(1.0, 2.0))
        assert len(configs) == 1 * 3 * 3 * 2

    def test_figure3_configurations(self):
        configs = figure3_configurations(densities=(0.5, 1.0, 2.0))
        assert len(configs) == 3
        assert all(c.n_clusters == 3 for c in configs)
        assert [c.density for c in configs] == [0.5, 1.0, 2.0]

    def test_small_configurations(self):
        configs = small_configurations()
        assert len(configs) >= 2
        assert all(c.max_jobs is not None for c in configs)
