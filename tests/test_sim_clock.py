"""Unit tests for the event-queue kernel (:mod:`repro.simulation.clock`)."""

from __future__ import annotations

import math

import pytest

from repro.core.job import Job
from repro.simulation.clock import (
    EventQueue,
    EventType,
    QueuedEvent,
    SimulationClock,
)


def _job(job_id: int, release: float) -> Job:
    return Job(job_id, release=release, size=1.0, databank="db")


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert math.isinf(queue.next_time())
        assert queue.pop_due(100.0) == []

    def test_orders_by_time(self):
        queue = EventQueue()
        for t in (3.0, 1.0, 2.0):
            queue.push(QueuedEvent(time=t, type=EventType.WAKEUP))
        assert queue.next_time() == 1.0
        popped = [e.time for e in queue.pop_due(math.inf)]
        assert popped == [1.0, 2.0, 3.0]

    def test_pop_due_only_returns_due_events(self):
        queue = EventQueue()
        queue.push_arrival(_job(0, 1.0))
        queue.push_arrival(_job(1, 5.0))
        due = queue.pop_due(1.0)
        assert [e.job.job_id for e in due] == [0]
        assert queue.next_time() == 5.0

    def test_simultaneous_arrivals_form_one_batch(self):
        queue = EventQueue()
        queue.push_arrival(_job(0, 2.0))
        queue.push_arrival(_job(1, 2.0))
        queue.push_arrival(_job(2, 2.0 + 1e-13))  # within tolerance
        due = queue.pop_due(2.0)
        assert [e.job.job_id for e in due] == [0, 1, 2]

    def test_insertion_order_preserved_for_equal_times(self):
        queue = EventQueue()
        for job_id in (4, 2, 7):
            queue.push_arrival(_job(job_id, 1.0))
        assert [e.job.job_id for e in queue.pop_due(1.0)] == [4, 2, 7]

    def test_arrivals_sort_before_wakeups(self):
        queue = EventQueue()
        queue.push(QueuedEvent(time=1.0, type=EventType.WAKEUP))
        queue.push_arrival(_job(0, 1.0))
        due = queue.pop_due(1.0)
        assert [e.type for e in due] == [EventType.ARRIVAL, EventType.WAKEUP]


class TestSimulationClock:
    def test_advances_forward(self):
        clock = SimulationClock(1.0)
        assert clock.advance_to(3.0) == 3.0
        assert clock.now == 3.0

    def test_rejects_backwards_jump(self):
        clock = SimulationClock(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)

    def test_tolerates_jitter(self):
        clock = SimulationClock(5.0)
        assert clock.advance_to(5.0 - 1e-13) == 5.0
