"""Tests for the LP-based schedulers: Offline and the Online variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.schedulers.offline import OfflineScheduler
from repro.schedulers.online_lp import OnlineLPScheduler
from repro.schedulers.priority import SRPTScheduler, SWRPTScheduler
from repro.simulation.engine import simulate

from helpers import make_uniform_instance


def random_restricted_instance(seed: int, n_jobs: int = 8) -> Instance:
    rng = np.random.default_rng(seed)
    platform = Platform(
        [
            Machine(0, 1.0, 0, frozenset({"a"})),
            Machine(1, 1.0, 0, frozenset({"a"})),
            Machine(2, 0.5, 1, frozenset({"a", "b"})),
            Machine(3, 2.0, 2, frozenset({"b"})),
        ]
    )
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        bank = "a" if i % 3 else "b"
        t += float(rng.exponential(0.8))
        jobs.append(Job(i, release=t, size=float(rng.uniform(0.5, 5.0)), databank=bank))
    return Instance(jobs, platform)


class TestOfflineScheduler:
    def test_achieves_lp_optimum(self):
        for seed in range(3):
            instance = random_restricted_instance(seed, n_jobs=6)
            scheduler = OfflineScheduler()
            result = simulate(instance, scheduler)
            result.schedule.validate(instance)
            assert scheduler.optimal_max_stretch is not None
            assert result.max_stretch <= scheduler.optimal_max_stretch * (1 + 1e-6)

    def test_optimum_lower_bounds_all_heuristics(self):
        instance = random_restricted_instance(1, n_jobs=7)
        offline = simulate(instance, OfflineScheduler())
        for scheduler in (SRPTScheduler(), SWRPTScheduler()):
            other = simulate(instance, scheduler)
            assert offline.max_stretch <= other.max_stretch + 1e-6

    def test_single_job_stretch_one(self):
        instance = make_uniform_instance(sizes=[5.0], releases=[2.0], cycle_times=[1.0, 1.0])
        result = simulate(instance, OfflineScheduler())
        assert result.max_stretch == pytest.approx(1.0, abs=1e-6)

    def test_empty_instance(self):
        platform = Platform.uniform([1.0], databanks=["db"])
        instance = Instance([], platform)
        result = simulate(instance, OfflineScheduler())
        assert result.completions == {}

    def test_reoptimize_sum_variant_keeps_optimal_max_stretch(self):
        instance = random_restricted_instance(2, n_jobs=6)
        plain = simulate(instance, OfflineScheduler())
        improved = simulate(instance, OfflineScheduler(reoptimize_sum=True))
        assert improved.max_stretch <= plain.max_stretch * (1 + 1e-4)
        # The System (2) pass should not degrade the sum-stretch.
        assert improved.sum_stretch <= plain.sum_stretch * (1 + 1e-6)

    def test_uses_divisibility_across_sites(self):
        """A single job hosted on two sites should use both (stretch 1)."""
        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 1, frozenset({"a"})),
            ]
        )
        instance = Instance([Job(0, release=0.0, size=4.0, databank="a")], platform)
        result = simulate(instance, OfflineScheduler())
        assert result.completions[0] == pytest.approx(2.0, rel=1e-6)


class TestOnlineVariants:
    @pytest.mark.parametrize("variant", ["online", "online-edf", "online-egdf", "online-nonopt"])
    def test_valid_schedules(self, variant):
        instance = random_restricted_instance(3, n_jobs=8)
        result = simulate(instance, OnlineLPScheduler(variant=variant))
        result.schedule.validate(instance)
        assert set(result.completions) == set(instance.jobs.ids())

    @pytest.mark.parametrize("variant", ["online", "online-edf"])
    def test_near_optimal_max_stretch(self, variant):
        """Paper, Section 5.3: Online and Online-EDF are within a fraction of a
        percent of the off-line optimal max-stretch on average."""
        gaps = []
        for seed in range(3):
            instance = random_restricted_instance(seed, n_jobs=7)
            offline = simulate(instance, OfflineScheduler())
            online = simulate(instance, OnlineLPScheduler(variant=variant))
            gaps.append(online.max_stretch / offline.max_stretch)
        assert np.mean(gaps) < 1.15

    def test_optimized_version_improves_sum_stretch(self):
        """Figure 3(b): the System (2) pass improves the sum-stretch."""
        improvements = []
        for seed in range(3):
            instance = random_restricted_instance(seed, n_jobs=8)
            optimized = simulate(instance, OnlineLPScheduler(variant="online"))
            non_optimized = simulate(instance, OnlineLPScheduler(variant="online-nonopt"))
            improvements.append(non_optimized.sum_stretch - optimized.sum_stretch)
        assert np.mean(improvements) >= -1e-6

    def test_egdf_has_best_sum_stretch_among_online_variants(self):
        sums = {}
        instance = random_restricted_instance(5, n_jobs=9)
        for variant in ("online", "online-edf", "online-egdf"):
            sums[variant] = simulate(instance, OnlineLPScheduler(variant=variant)).sum_stretch
        assert sums["online-egdf"] <= min(sums["online"], sums["online-edf"]) * 1.05

    def test_single_job_stretch_one(self):
        instance = make_uniform_instance(sizes=[5.0], releases=[1.0], cycle_times=[1.0, 0.5])
        for variant in ("online", "online-egdf"):
            result = simulate(instance, OnlineLPScheduler(variant=variant))
            assert result.max_stretch == pytest.approx(1.0, abs=1e-6)

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            OnlineLPScheduler(variant="nope")

    def test_resolution_counter_increments(self):
        instance = random_restricted_instance(4, n_jobs=5)
        scheduler = OnlineLPScheduler(variant="online")
        simulate(instance, scheduler)
        assert scheduler.n_resolutions == instance.n_jobs
        assert scheduler.last_objective is not None

    def test_online_achieved_stretch_never_below_offline_optimum(self):
        """No on-line schedule can beat the off-line optimal max-stretch."""
        instance = random_restricted_instance(6, n_jobs=6)
        offline_optimum = minimize_max_weighted_flow(problem_from_instance(instance)).objective
        scheduler = OnlineLPScheduler(variant="online")
        result = simulate(instance, scheduler)
        assert scheduler.last_objective is not None and scheduler.last_objective > 0
        assert result.max_stretch >= offline_optimum - 1e-6
