"""Tests of the service layer: daemon, ingestion robustness, trace replay, HTTP.

The headline contracts:

* every trace the daemon journals replays bit-identically to batch
  ``simulate()`` on the reconstructed instance (under ``on-arrival`` AND
  ``batched:D`` replanning);
* malformed/duplicate JSONL lines are rejected with per-record error
  accounting, never kill the daemon and never perturb admitted jobs.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.service import (
    AdmissionError,
    SchedulerDaemon,
    ServiceConfig,
    ServiceError,
    ServiceServer,
    SubmissionRequest,
    SubmissionTrace,
    batch_reference,
    ingest_lines,
    parse_submission,
    read_trace,
    replay_trace,
    verify_replay,
)
from repro.service.trace import TraceWriter


def small_platform() -> Platform:
    return Platform(
        [
            Machine(0, cycle_time=0.5, cluster_id=0, databanks=frozenset({"sp", "nt"})),
            Machine(1, cycle_time=0.5, cluster_id=0, databanks=frozenset({"sp", "nt"})),
            Machine(2, cycle_time=1.0, cluster_id=1, databanks=frozenset({"pdb", "nt"})),
        ]
    )


def make_trace(scheduler="online", options=None, jobs=None) -> SubmissionTrace:
    if jobs is None:
        jobs = [
            Job(0, release=0.0, size=6.0, databank="sp"),
            Job(1, release=0.5, size=2.0, databank="pdb"),
            Job(2, release=2.0, size=3.0, databank="nt"),
            Job(3, release=2.0, size=1.0, databank="sp"),
            Job(4, release=9.0, size=4.0, databank="nt"),
        ]
    return SubmissionTrace(
        platform=small_platform(),
        scheduler=scheduler,
        scheduler_options=options or {},
        jobs=jobs,
    )


class TestTraceRoundTrip:
    def test_write_read_round_trip_is_exact(self, tmp_path):
        trace = make_trace(options={"policy": "batched:1.5", "incremental": True})
        path = tmp_path / "t.jsonl"
        with TraceWriter(path, trace) as writer:
            for job in trace.jobs:
                writer.append(job)
        loaded = read_trace(path)
        assert loaded.scheduler == trace.scheduler
        assert loaded.scheduler_options == trace.scheduler_options
        assert loaded.platform == trace.platform
        assert loaded.jobs == trace.jobs  # exact float round-trip

    def test_truncated_final_line_is_dropped(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.jsonl"
        with TraceWriter(path, trace) as writer:
            for job in trace.jobs:
                writer.append(job)
        raw = path.read_text()
        path.write_text(raw.rstrip("\n")[:-7])  # kill mid-record
        loaded = read_trace(path)
        assert [j.job_id for j in loaded.jobs] == [0, 1, 2, 3]

    def test_malformed_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "something-else"}\n')
        with pytest.raises(ServiceError, match="not a repro-service-trace"):
            read_trace(path)

    def test_unsupported_version_raises(self, tmp_path):
        trace = make_trace()
        header = trace.header()
        header["version"] = 99
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ServiceError, match="unsupported version"):
            read_trace(path)

    def test_malformed_record_raises(self, tmp_path):
        trace = make_trace()
        path = tmp_path / "t.jsonl"
        path.write_text(json.dumps(trace.header()) + "\n" + "{broken\n" + "x\n")
        with pytest.raises(ServiceError, match="malformed record at line 2"):
            read_trace(path)


class TestReplayContract:
    @pytest.mark.parametrize(
        "scheduler,options",
        [
            ("online", {"policy": "on-arrival"}),
            ("online", {"policy": "batched:2"}),
            ("online-edf", {"policy": "on-arrival"}),
            ("online-egdf", {"policy": "batched:1"}),
            ("swrpt", {}),
            ("fcfs", {}),
        ],
    )
    def test_replay_is_bit_identical_to_batch(self, scheduler, options):
        trace = make_trace(scheduler=scheduler, options=options)
        check = verify_replay(trace)
        assert check.identical, check.detail

    def test_replay_and_batch_results_are_full_objects(self):
        trace = make_trace(scheduler="srpt")
        replay = replay_trace(trace)
        batch = batch_reference(trace)
        assert replay.completions == batch.completions
        assert replay.max_stretch == batch.max_stretch


class TestIngestValidation:
    def test_parse_submission_happy_path(self):
        request = parse_submission(
            {"size": 3.5, "databank": "sp", "weight": 2.0, "name": "x",
             "client_id": "c1"}
        )
        assert request == SubmissionRequest(
            size=3.5, databank="sp", weight=2.0, name="x", client_id="c1"
        )

    @pytest.mark.parametrize(
        "payload,match",
        [
            ([1, 2], "JSON object"),
            ({"databank": "sp"}, "missing required field 'size'"),
            ({"size": "big"}, "'size' must be a number"),
            ({"size": True}, "'size' must be a number"),
            ({"size": -1.0}, "positive finite"),
            ({"size": float("nan")}, "positive finite"),
            ({"size": 1.0, "databank": 3}, "'databank' must be a string"),
            ({"size": 1.0, "weight": -2}, "'weight' must be positive"),
            ({"size": 1.0, "databnak": "sp"}, "unknown fields: databnak"),
            ({"size": 1.0, "client_id": 7}, "'client_id' must be a string"),
        ],
    )
    def test_parse_submission_rejections(self, payload, match):
        with pytest.raises(ValueError, match=match):
            parse_submission(payload)

    def test_ingest_lines_accounts_per_record(self):
        admitted = []

        def admit(request):
            if request.databank == "bad":
                raise ValueError("unhosted")
            admitted.append(request)
            return len(admitted) - 1, 0.0

        lines = [
            json.dumps({"size": 1.0, "databank": "sp"}),
            "not json at all",
            "",  # blank lines are skipped silently
            json.dumps({"size": 2.0, "databank": "bad"}),
            json.dumps({"size": "NaN"}),
            json.dumps({"size": 3.0}),
        ]
        report = ingest_lines(lines, admit)
        assert report.accepted == 2
        assert report.rejected == 3
        assert [e.line_no for e in report.errors] == [2, 4, 5]
        assert [a[0] for a in report.admissions] == [1, 6]
        assert len(admitted) == 2


def drain(daemon: SchedulerDaemon):
    daemon.close_submissions()
    return daemon.join(timeout=60.0)


class TestDaemon:
    def test_lifecycle_and_journal_replay(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        daemon = SchedulerDaemon(
            small_platform(),
            ServiceConfig(scheduler="online", journal=str(journal)),
        )
        daemon.start()
        ids = [
            daemon.submit(SubmissionRequest(size=5.0, databank="sp"))[0],
            daemon.submit(SubmissionRequest(size=2.0, databank="pdb"))[0],
            daemon.submit(SubmissionRequest(size=3.0, databank="nt"))[0],
        ]
        assert ids == [0, 1, 2]
        result = drain(daemon)
        assert sorted(result.completions) == [0, 1, 2]
        trace = read_trace(journal)
        assert len(trace) == 3
        check = verify_replay(trace)
        assert check.identical, check.detail

    @pytest.mark.parametrize("policy", ["on-arrival", "batched:1"])
    def test_journal_replay_across_policies(self, tmp_path, policy):
        journal = tmp_path / "run.jsonl"
        daemon = SchedulerDaemon(
            small_platform(),
            ServiceConfig(
                scheduler="online", replan_policy=policy, journal=str(journal)
            ),
        )
        daemon.start()
        for size, bank in [(4.0, "sp"), (1.5, "pdb"), (2.5, "nt"), (0.5, "sp")]:
            daemon.submit(SubmissionRequest(size=size, databank=bank))
        drain(daemon)
        trace = read_trace(journal)
        assert trace.scheduler_options["policy"] == policy
        check = verify_replay(trace)
        assert check.identical, check.detail

    def test_rejections_do_not_perturb_admitted_jobs(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        daemon = SchedulerDaemon(
            small_platform(),
            ServiceConfig(scheduler="online", journal=str(journal)),
        )
        daemon.start()
        daemon.submit(SubmissionRequest(size=5.0, databank="sp", client_id="a"))
        window = [
            json.dumps({"size": 2.0, "databank": "pdb", "client_id": "b"}),
            "{malformed",
            json.dumps({"size": 1.0, "databank": "unhosted-bank"}),
            json.dumps({"size": 1.0, "databank": "nt", "client_id": "a"}),  # dup
            json.dumps({"size": 9.0, "wat": 1}),
            json.dumps({"size": 3.0, "databank": "nt", "client_id": "c"}),
        ]
        report = daemon.ingest(window)
        assert report.accepted == 2
        assert report.rejected == 4
        reasons = " | ".join(e.reason for e in report.errors)
        assert "malformed JSON" in reasons
        assert "hosted on no machine" in reasons
        assert "duplicate client_id" in reasons
        assert "unknown fields" in reasons
        # The daemon survives and the admitted jobs complete untouched.
        assert daemon.running
        result = drain(daemon)
        assert sorted(result.completions) == [0, 1, 2]
        # And the journaled trace holds exactly the accepted submissions.
        trace = read_trace(journal)
        assert [j.job_id for j in trace.jobs] == [0, 1, 2]
        assert verify_replay(trace).identical

    def test_telemetry_document_shape(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        daemon.start()
        daemon.submit(SubmissionRequest(size=2.0, databank="sp"))
        telemetry = daemon.telemetry()
        for key in (
            "scheduler", "running", "accepted", "rejected", "pending",
            "virtual_now", "lp", "time", "n_active", "n_completed",
            "queue_depth_by_databank", "max_stretch_objective", "assignment",
        ):
            assert key in telemetry, key
        for key in (
            "n_probes", "histogram", "n_replans", "replan_latency_p50",
            "replan_latency_p90", "replan_latency_p99", "speculation_hit_rate",
        ):
            assert key in telemetry["lp"], key
        assert telemetry["accepted"] == 1
        json.dumps(daemon.telemetry())  # JSON-serializable as served
        drain(daemon)

    def test_submit_after_close_is_rejected(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        daemon.start()
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        daemon.close_submissions()
        with pytest.raises(ServiceError, match="closed"):
            daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        daemon.join(timeout=60.0)

    def test_empty_run_drains_cleanly(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig(scheduler="fcfs"))
        daemon.start()
        result = drain(daemon)
        assert result.completions == {}

    def test_config_rejects_clairvoyant_schedulers(self):
        for key in ("offline", "offline-sum", "bender98", "bender02"):
            with pytest.raises(ServiceError, match="not service-safe"):
                ServiceConfig(scheduler=key)

    def test_config_rejects_bad_policy_and_backend(self):
        with pytest.raises(ServiceError):
            ServiceConfig(replan_policy="whenever")
        with pytest.raises(ServiceError):
            ServiceConfig(solver_backend="cplex")
        with pytest.raises(ServiceError):
            ServiceConfig(time_scale=-1.0)


def http_json(url: str, data: bytes | None = None, method: str | None = None):
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode())


class TestHttpSurface:
    def test_full_http_session(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        daemon = SchedulerDaemon(
            small_platform(), ServiceConfig(journal=str(journal))
        )
        with ServiceServer(daemon) as server:
            status, reply = http_json(
                f"{server.url}/submit",
                json.dumps({"size": 4.0, "databank": "sp"}).encode(),
            )
            assert status == 200 and reply == {"job_id": 0, "release": 0.0}

            window = "\n".join(
                [
                    json.dumps({"size": 2.0, "databank": "pdb"}),
                    "{oops",
                    json.dumps({"size": 1.0, "databank": "nt"}),
                ]
            )
            status, report = http_json(f"{server.url}/stream", window.encode())
            assert status == 200
            assert report["accepted"] == 2 and report["rejected"] == 1
            assert report["errors"][0]["line"] == 2

            status, telemetry = http_json(f"{server.url}/telemetry")
            assert status == 200
            assert telemetry["accepted"] == 3 and telemetry["rejected"] == 1

            status, reply = http_json(
                f"{server.url}/submit", json.dumps({"size": -2}).encode()
            )
            assert status == 400

            status, drained = http_json(f"{server.url}/drain", b"", method="POST")
            assert status == 200
            assert drained["status"] == "drained" and drained["n_jobs"] == 3

            # After the drain the stream is closed: submissions get 409
            # (permanent for this daemon, unlike a load-shed 503).
            status, reply = http_json(
                f"{server.url}/submit",
                json.dumps({"size": 1.0, "databank": "sp"}).encode(),
            )
            assert status == 409 and reply.get("draining") is True

            status, reply = http_json(f"{server.url}/nope")
            assert status == 404
        assert verify_replay(read_trace(journal)).identical

    def test_duplicate_client_id_gets_409(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        with ServiceServer(daemon) as server:
            body = json.dumps(
                {"size": 1.0, "databank": "sp", "client_id": "once"}
            ).encode()
            status, _ = http_json(f"{server.url}/submit", body)
            assert status == 200
            status, reply = http_json(f"{server.url}/submit", body)
            assert status == 409 and "duplicate" in reply["error"]
            http_json(f"{server.url}/drain", b"", method="POST")


class FakeReplanStats:
    """Just enough of the LP stats surface for the p99 admission valve."""

    def __init__(self, latencies):
        self.replan_latencies = list(latencies)

    def replan_percentile(self, q):
        return max(self.replan_latencies)


class TestAdmissionControl:
    def test_config_validates_valve_knobs(self):
        with pytest.raises(ServiceError, match="max_pending"):
            ServiceConfig(max_pending=0)
        with pytest.raises(ServiceError, match="shed_replan_p99"):
            ServiceConfig(shed_replan_p99=0.0)
        with pytest.raises(ServiceError, match="retry_after"):
            ServiceConfig(retry_after=0.0)

    def test_queue_full_sheds_with_retry_after(self):
        # The daemon is not started, so nothing drains the pending queue:
        # the valve's behavior is deterministic.
        daemon = SchedulerDaemon(
            small_platform(), ServiceConfig(max_pending=1, retry_after=2.5)
        )
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        with pytest.raises(AdmissionError, match="queue full") as info:
            daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        assert info.value.retry_after == 2.5
        telemetry = daemon.telemetry()
        assert telemetry["shed"] == 1
        assert telemetry["rejected"] == 1
        assert telemetry["accepted"] == 1
        daemon.start()
        result = drain(daemon)
        assert sorted(result.completions) == [0]  # shed job never admitted

    def test_replan_latency_valve_trips_past_the_cold_start_guard(self):
        daemon = SchedulerDaemon(
            small_platform(), ServiceConfig(shed_replan_p99=0.01)
        )
        # Cold start: too few replans observed, one slow solve never sheds.
        daemon.engine.lp_stats = FakeReplanStats([5.0] * 4)
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        # Warmed up and over target: shed.
        daemon.engine.lp_stats = FakeReplanStats([5.0] * 5)
        with pytest.raises(AdmissionError, match="replan latency"):
            daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        # Back under target: admission resumes (the valve is transient).
        daemon.engine.lp_stats = FakeReplanStats([0.001] * 5)
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        daemon.start()
        assert sorted(drain(daemon).completions) == [0, 1]

    def test_draining_outranks_shedding(self):
        # Once the stream is closed, even an over-full queue must answer
        # with the permanent condition (409), not the transient 503.
        daemon = SchedulerDaemon(
            small_platform(), ServiceConfig(max_pending=1)
        )
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        daemon.close_submissions()
        with pytest.raises(ServiceError, match="closed") as info:
            daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        assert not isinstance(info.value, AdmissionError)
        daemon.start()
        daemon.join(timeout=60.0)


class TestHealthz:
    def test_status_ladder(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        assert daemon.healthz()["status"] == "accepting"
        daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        daemon.close_submissions()
        assert daemon.healthz()["status"] == "draining"
        daemon.start()
        daemon.join(timeout=60.0)
        doc = daemon.healthz()
        assert doc["status"] == "stopped"
        assert doc["accepted"] == 1
        assert doc["shed"] == 0
        assert "error" not in doc

    def test_failed_engine_is_reported(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        daemon._error = RuntimeError("engine exploded")
        doc = daemon.healthz()
        assert doc["status"] == "failed"
        assert "engine exploded" in doc["error"]


def http_raw(url: str, data: bytes | None = None, method: str | None = None):
    """Like :func:`http_json` but also returns the response headers."""
    request = urllib.request.Request(
        url, data=data, method=method or ("POST" if data is not None else "GET")
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode()), response.headers
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read().decode()), exc.headers


class TestHttpHardening:
    def test_shed_maps_to_503_with_retry_after_header(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())

        def always_shed():
            raise AdmissionError("queue full (synthetic)", retry_after=2.5)

        with ServiceServer(daemon) as server:
            # One normal admission first (the drained run needs a job), then
            # force the valve shut so the shed path is deterministic.
            status, _, _ = http_raw(
                f"{server.url}/submit",
                json.dumps({"size": 1.0, "databank": "sp"}).encode(),
            )
            assert status == 200
            daemon._check_admission = always_shed
            status, reply, headers = http_raw(
                f"{server.url}/submit",
                json.dumps({"size": 1.0, "databank": "sp"}).encode(),
            )
            assert status == 503
            assert headers["Retry-After"] == "2.5"
            assert reply["retry_after"] == 2.5
            assert "queue full" in reply["error"]
            _, telemetry, _ = http_raw(f"{server.url}/telemetry")
            assert telemetry["shed"] == 1
            http_json(f"{server.url}/drain", b"", method="POST")

    def test_healthz_route_tracks_the_drain(self):
        daemon = SchedulerDaemon(small_platform(), ServiceConfig())
        with ServiceServer(daemon) as server:
            status, doc = http_json(f"{server.url}/healthz")
            assert status == 200
            assert doc["status"] == "accepting"
            http_json(
                f"{server.url}/submit",
                json.dumps({"size": 1.0, "databank": "sp"}).encode(),
            )
            http_json(f"{server.url}/drain", b"", method="POST")
            status, doc = http_json(f"{server.url}/healthz")
            assert status == 200
            # The engine thread may still be sealing the run: both the
            # draining and stopped states are legal here, accepting is not.
            assert doc["status"] in ("draining", "stopped")


class TestOverloadSmoke:
    def test_sustained_overload_sheds_503_and_replays_bit_identically(
        self, tmp_path
    ):
        """The CI chaos-smoke contract: under injected load past the shed
        threshold the daemon answers only 200 or deliberate 503s, and the
        journaled trace of the *admitted* subset still replays bit-identical
        to batch ``simulate()``."""
        journal = tmp_path / "overload.jsonl"
        daemon = SchedulerDaemon(
            small_platform(),
            ServiceConfig(
                scheduler="online",
                journal=str(journal),
                time_scale=200.0,
                shed_replan_p99=1e-9,  # any real replan latency trips it
                retry_after=0.5,
            ),
        )
        with ServiceServer(daemon) as server:
            codes = []
            banks = ("sp", "nt", "pdb")
            for i in range(100):
                status, reply = http_json(
                    f"{server.url}/submit",
                    json.dumps({"size": 1.0, "databank": banks[i % 3]}).encode(),
                )
                codes.append(status)
                if status == 503:
                    assert reply["retry_after"] == 0.5
                accepted = codes.count(200)
                if 503 in codes and accepted >= 3:
                    break
                time.sleep(0.01)  # let the paced engine replan
            assert set(codes) <= {200, 503}, codes
            assert 503 in codes, "the valve never shed under sustained load"
            assert codes.count(200) >= 1
            status, drained = http_json(f"{server.url}/drain", b"", method="POST")
            assert status == 200
            assert drained["n_jobs"] == codes.count(200)
        trace = read_trace(journal)
        assert len(trace) == codes.count(200)
        assert verify_replay(trace).identical


class TestCliSigterm:
    def test_sigterm_drains_seals_journal_and_exits_zero(self, tmp_path):
        """Satellite 3: SIGTERM means drain-then-exit with the journal sealed."""
        import os
        import signal
        import subprocess
        import sys

        journal = tmp_path / "serve.jsonl"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            __import__("pathlib").Path(__file__).resolve().parent.parent / "src"
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--clusters", "1", "--processors", "2", "--databanks", "2",
                "--availability", "1.0", "--time-scale", "50",
                "--journal", str(journal), "--port", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            url = None
            databank = None
            for line in process.stdout:
                if line.startswith("databanks: "):
                    databank = line.split("databanks: ", 1)[1].split(",")[0].strip()
                if line.startswith("serving on "):
                    url = line.split("serving on ", 1)[1].strip()
                    break
            assert url, "daemon never printed its URL"
            assert databank, "daemon never printed its databank catalog"
            _, doc = http_json(f"{url}/healthz")
            assert doc["status"] == "accepting"
            status, reply = http_json(
                f"{url}/submit",
                json.dumps({"size": 1.0, "databank": databank}).encode(),
            )
            assert status == 200, reply
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr
            assert "draining admitted jobs" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        # The journal is sealed and replayable: the drain completed cleanly.
        trace = read_trace(journal)
        assert len(trace) == 1
        assert verify_replay(trace).identical


class TestPacedClock:
    def test_paced_daemon_assigns_wall_clock_releases(self):
        daemon = SchedulerDaemon(
            small_platform(), ServiceConfig(scheduler="fcfs", time_scale=50.0)
        )
        daemon.start()
        _, r0 = daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        time.sleep(0.05)
        _, r1 = daemon.submit(SubmissionRequest(size=1.0, databank="sp"))
        assert r1 >= r0  # monotone admission clock
        assert r1 > 0.0  # the wall clock actually advanced virtual time
        result = drain(daemon)
        assert sorted(result.completions) == [0, 1]
