"""Tests of the typed option enums and their shared coercion/CLI helper."""

from __future__ import annotations

import argparse
import json

import pytest

from repro.core.errors import ModelError
from repro.experiments.config import ExperimentConfig
from repro.options import DispatchMode, OnOff, SolverBackendChoice, enum_option


class TestOnOff:
    def test_members_are_their_spelling(self):
        assert OnOff.ON == "on"
        assert str(OnOff.OFF) == "off"
        assert f"{OnOff.ON}" == "on"
        assert json.dumps({"k": OnOff.ON}) == '{"k": "on"}'

    def test_truthiness_follows_the_toggle(self):
        assert bool(OnOff.ON) is True
        assert bool(OnOff.OFF) is False  # a plain StrEnum would be truthy!

    def test_coerce_canonical_and_member(self):
        assert OnOff.coerce("on") is OnOff.ON
        assert OnOff.coerce("OFF") is OnOff.OFF
        assert OnOff.coerce(OnOff.ON) is OnOff.ON
        assert OnOff.coerce(True) is OnOff.ON
        assert OnOff.coerce(False) is OnOff.OFF

    @pytest.mark.parametrize(
        "legacy,expected",
        [("true", OnOff.ON), ("yes", OnOff.ON), ("1", OnOff.ON),
         ("false", OnOff.OFF), ("no", OnOff.OFF), ("disabled", OnOff.OFF)],
    )
    def test_legacy_spellings_warn(self, legacy, expected):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            assert OnOff.coerce(legacy, param="--state-bank") is expected

    def test_invalid_value_names_choices(self):
        with pytest.raises(ValueError, match="'on', 'off'"):
            OnOff.coerce("maybe", param="--speculate")


class TestOtherEnums:
    def test_solver_backend_choices(self):
        assert SolverBackendChoice.coerce("auto") is SolverBackendChoice.AUTO
        with pytest.warns(DeprecationWarning):
            assert SolverBackendChoice.coerce("linprog") is SolverBackendChoice.SCIPY
        with pytest.raises(ValueError):
            SolverBackendChoice.coerce("cplex")

    def test_dispatch_modes(self):
        assert DispatchMode.coerce("task") is DispatchMode.TASK
        with pytest.warns(DeprecationWarning):
            assert DispatchMode.coerce("grouped") is DispatchMode.GROUP
        # The str mixin keeps historical comparisons working.
        assert DispatchMode.GROUP == "group"


class TestEnumOption:
    def build(self):
        parser = argparse.ArgumentParser()
        parser.add_argument("--toggle", **enum_option(OnOff, OnOff.OFF,
                                                      param="--toggle"))
        return parser

    def test_parses_canonical_value(self):
        args = self.build().parse_args(["--toggle", "on"])
        assert args.toggle is OnOff.ON

    def test_default_is_a_member(self):
        assert self.build().parse_args([]).toggle is OnOff.OFF

    def test_legacy_value_warns_but_parses(self):
        with pytest.warns(DeprecationWarning):
            args = self.build().parse_args(["--toggle", "yes"])
        assert args.toggle is OnOff.ON

    def test_invalid_value_errors_out(self):
        with pytest.raises(SystemExit):
            self.build().parse_args(["--toggle", "sideways"])


class TestExperimentConfigNormalization:
    def make(self, **kwargs):
        return ExperimentConfig(
            name="t", n_clusters=2, n_databanks=2, availability=0.6,
            density=1.0, **kwargs
        )

    def test_defaults_are_enum_members(self):
        config = self.make()
        assert config.solver_backend is SolverBackendChoice.AUTO
        assert config.state_bank is OnOff.ON
        assert config.speculation is OnOff.OFF

    def test_strings_and_bools_normalize(self):
        config = self.make(solver_backend="scipy", state_bank=False,
                           speculation="on")
        assert config.solver_backend is SolverBackendChoice.SCIPY
        assert config.state_bank is OnOff.OFF
        assert config.speculation is OnOff.ON

    def test_invalid_toggle_is_a_model_error(self):
        with pytest.raises(ModelError):
            self.make(solver_backend="gurobi")
        with pytest.raises(ModelError):
            self.make(state_bank="sometimes")

    def test_as_dict_keeps_the_journal_schema_primitives(self):
        config = self.make(state_bank="off", speculation=True)
        data = config.as_dict()
        assert data["solver_backend"] == "auto"
        assert data["state_bank"] is False
        assert data["speculation"] is True

    def test_scheduler_options_emit_plain_types(self):
        options = self.make(state_bank="off").scheduler_options_for("online")
        assert options["state_bank"] is False
        assert options["speculate"] is False
        assert isinstance(options["solver_backend"], str)


class TestRunnerDispatchCoercion:
    def test_bad_dispatch_mode_is_rejected_early(self):
        from repro.core.errors import ReproError
        from repro.experiments.config import small_configurations
        from repro.experiments.runner import run_campaign

        with pytest.raises(ReproError, match="unknown dispatch mode"):
            run_campaign(small_configurations()[:1], scheduler_keys=["fcfs"],
                         replicates=1, dispatch="shuffled")

    def test_legacy_dispatch_spelling_warns(self):
        from repro.experiments.config import small_configurations
        from repro.experiments.runner import run_campaign

        with pytest.warns(DeprecationWarning):
            results = run_campaign(
                small_configurations()[:1], scheduler_keys=["fcfs"],
                replicates=1, dispatch="per-task"
            )
        assert len(results) == 1
