"""Tests for the replan policies (:mod:`repro.schedulers.policies`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers.online_lp import OnlineLPScheduler
from repro.schedulers.policies import (
    BatchedPolicy,
    OnArrivalPolicy,
    ReplanDecision,
    ThresholdPolicy,
    available_policies,
    parse_policy,
)
from repro.simulation.engine import simulate

from test_sched_offline_online import random_restricted_instance

ONLINE_VARIANTS = ("online", "online-edf", "online-egdf", "online-nonopt")


class TestParsePolicy:
    def test_on_arrival(self):
        assert isinstance(parse_policy("on-arrival"), OnArrivalPolicy)

    def test_batched(self):
        policy = parse_policy("batched:2.5")
        assert isinstance(policy, BatchedPolicy)
        assert policy.delta == 2.5
        assert policy.describe() == "batched:2.5"

    def test_threshold_with_and_without_factor(self):
        assert parse_policy("threshold").degradation == pytest.approx(1.5)
        assert parse_policy("threshold:2").degradation == pytest.approx(2.0)

    def test_instance_passthrough(self):
        policy = BatchedPolicy(1.0)
        assert parse_policy(policy) is policy

    def test_round_trip_through_describe(self):
        for spec in ("on-arrival", "batched:0.5", "threshold:1.2"):
            assert parse_policy(spec).describe() == spec

    @pytest.mark.parametrize(
        "spec", ["nope", "batched", "batched:x", "threshold:0.5", "batched:-1"]
    )
    def test_rejects_malformed_specs(self, spec):
        with pytest.raises(ValueError):
            parse_policy(spec)

    def test_available_policies_listed_in_error(self):
        with pytest.raises(ValueError, match="on-arrival"):
            parse_policy("bogus")
        assert any(p.startswith("batched") for p in available_policies())


class TestReplanDecision:
    def test_deferral_must_be_covered(self):
        # A decision that neither replans, absorbs, nor schedules a wake-up
        # would starve the deferred jobs.
        with pytest.raises(ValueError):
            ReplanDecision(replan=False)

    def test_valid_forms(self):
        ReplanDecision(replan=True)
        ReplanDecision(replan=False, recheck_at=1.0)
        ReplanDecision(replan=False, absorb=True)


class TestBatchedPolicy:
    @pytest.mark.parametrize("variant", ONLINE_VARIANTS)
    def test_zero_window_identical_to_on_arrival(self, variant):
        """batched(D) with D -> 0 degenerates to the paper's on-arrival policy."""
        instance = random_restricted_instance(3, n_jobs=8)
        reference = simulate(instance, OnlineLPScheduler(variant=variant))
        batched = simulate(
            instance, OnlineLPScheduler(variant=variant, policy="batched:0")
        )
        for job_id, completion in reference.completions.items():
            assert batched.completions[job_id] == pytest.approx(completion, abs=1e-9)
        assert batched.max_stretch == pytest.approx(reference.max_stretch, rel=1e-9)
        assert batched.sum_stretch == pytest.approx(reference.sum_stretch, rel=1e-9)

    @pytest.mark.parametrize("variant", ONLINE_VARIANTS)
    def test_positive_window_valid_schedule(self, variant):
        instance = random_restricted_instance(4, n_jobs=8)
        scheduler = OnlineLPScheduler(variant=variant, policy="batched:1.5")
        result = simulate(instance, scheduler)
        result.schedule.validate(instance)
        assert set(result.completions) == set(instance.jobs.ids())
        assert np.isfinite(result.max_stretch)

    def test_positive_window_reduces_resolutions(self):
        instance = random_restricted_instance(5, n_jobs=9)
        on_arrival = OnlineLPScheduler(variant="online")
        simulate(instance, on_arrival)
        batched = OnlineLPScheduler(variant="online", policy="batched:3.0")
        simulate(instance, batched)
        assert batched.n_resolutions < on_arrival.n_resolutions
        assert batched.n_resolutions >= 1

    def test_non_default_policy_visible_in_name(self):
        scheduler = OnlineLPScheduler(variant="online", policy="batched:2")
        assert "batched:2" in scheduler.name
        assert OnlineLPScheduler(variant="online").name == "Online"

    def test_policy_state_reset_between_runs(self):
        instance = random_restricted_instance(6, n_jobs=6)
        scheduler = OnlineLPScheduler(variant="online", policy="batched:1.0")
        first = simulate(instance, scheduler)
        second = simulate(instance, scheduler)
        for job_id, completion in first.completions.items():
            assert second.completions[job_id] == pytest.approx(completion, abs=1e-9)


class TestThresholdPolicy:
    @pytest.mark.parametrize("variant", ONLINE_VARIANTS)
    def test_valid_schedule(self, variant):
        instance = random_restricted_instance(7, n_jobs=9)
        scheduler = OnlineLPScheduler(variant=variant, policy="threshold:1.5")
        result = simulate(instance, scheduler)
        result.schedule.validate(instance)
        assert set(result.completions) == set(instance.jobs.ids())
        assert np.isfinite(result.max_stretch)

    def test_loose_threshold_skips_resolutions(self):
        instance = random_restricted_instance(8, n_jobs=10)
        on_arrival = OnlineLPScheduler(variant="online")
        simulate(instance, on_arrival)
        lazy = OnlineLPScheduler(variant="online", policy="threshold:1000")
        simulate(instance, lazy)
        assert lazy.n_resolutions < on_arrival.n_resolutions
        assert lazy.n_resolutions >= 1  # the first arrival always replans

    def test_tight_threshold_matches_on_arrival_cadence(self):
        # degradation factor 1 means any estimated excess triggers a replan;
        # the schedule must still be valid and close to the reference.
        instance = random_restricted_instance(9, n_jobs=7)
        scheduler = OnlineLPScheduler(variant="online", policy="threshold:1")
        result = simulate(instance, scheduler)
        result.schedule.validate(instance)
        assert set(result.completions) == set(instance.jobs.ids())

    def test_rejects_degradation_below_one(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(0.9)


class TestAbsorbArrivals:
    def test_absorbed_job_appended_after_plan_gaps(self):
        """Regression: absorbing into a short idle gap must not overlap.

        LP plans routinely leave idle gaps between milestone intervals; a
        job longer than the first gap has to go to the *tail* of the plan,
        otherwise its segment overlaps the next planned one and the shadowed
        job silently loses service.
        """
        from repro.core.instance import Instance
        from repro.core.job import Job
        from repro.core.platform import Platform
        from repro.schedulers.base import PlanSegment
        from repro.simulation.state import SchedulerState

        platform = Platform.uniform([1.0], databanks=["db"])
        jobs = [
            Job(0, release=0.0, size=15.0, databank="db"),
            Job(1, release=2.0, size=8.0, databank="db"),
        ]
        instance = Instance(jobs, platform)
        scheduler = OnlineLPScheduler(variant="online", policy="threshold:1.5")
        scheduler.reset(instance)
        # A plan with an internal idle gap [5, 10] shorter than the new job.
        scheduler.set_plan(
            [
                PlanSegment(machine_id=0, job_id=0, start=0.0, end=5.0),
                PlanSegment(machine_id=0, job_id=0, start=10.0, end=20.0),
            ]
        )
        assert scheduler.plan_horizon(0, 2.0) == pytest.approx(5.0)
        assert scheduler.plan_tail(0, 2.0) == pytest.approx(20.0)

        state = SchedulerState(instance)
        state.time = 2.0
        state.release(jobs[1])
        scheduler.absorb_arrivals(state, [jobs[1]])
        segments = sorted(scheduler.plan_segments(0), key=lambda s: s.start)
        for earlier, later in zip(segments, segments[1:]):
            assert earlier.end <= later.start + 1e-12
        absorbed = [s for s in segments if s.job_id == 1]
        assert absorbed and absorbed[0].start == pytest.approx(20.0)
