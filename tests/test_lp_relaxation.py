"""Unit tests for System (2): :mod:`repro.lp.relaxation`."""

from __future__ import annotations

import pytest

from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import LPJob, MaxStretchProblem, Resource
from repro.lp.relaxation import reoptimize_allocation


def make_problem() -> MaxStretchProblem:
    resources = (Resource(0, speed=1.0, machine_ids=(0,)),)
    jobs = (
        LPJob(0, earliest_start=0.0, remaining_work=6.0, release=0.0,
              flow_factor=6.0, resources=(0,)),
        LPJob(1, earliest_start=1.0, remaining_work=1.0, release=1.0,
              flow_factor=1.0, resources=(0,)),
        LPJob(2, earliest_start=2.0, remaining_work=1.0, release=2.0,
              flow_factor=1.0, resources=(0,)),
    )
    return MaxStretchProblem(resources=resources, jobs=jobs)


class TestReoptimization:
    def test_allocation_complete_and_deadline_respecting(self):
        problem = make_problem()
        best = minimize_max_weighted_flow(problem)
        reopt = reoptimize_allocation(problem, best.objective)
        for job in problem.jobs:
            assert reopt.work_for_job(job.job_id) == pytest.approx(job.remaining_work, rel=1e-6)
        # The certificate of the re-optimized allocation must stay within the
        # (slightly inflated) objective bound.
        assert reopt.max_weighted_flow_of_allocation() <= reopt.objective + 1e-6

    def test_objective_is_inflated_bound(self):
        problem = make_problem()
        best = minimize_max_weighted_flow(problem)
        reopt = reoptimize_allocation(problem, best.objective, inflation=1e-7)
        assert reopt.objective >= best.objective
        assert reopt.objective <= best.objective * (1 + 1e-3)

    def test_small_jobs_pulled_earlier_than_plain_system1(self):
        """System (2) should serve the short jobs earlier on average."""
        problem = make_problem()
        best = minimize_max_weighted_flow(problem)
        reopt = reoptimize_allocation(problem, best.objective)

        def mean_completion_interval(solution, job_id):
            intervals = [
                t for (t, c, j), w in solution.allocations.items() if j == job_id and w > 1e-9
            ]
            return max(intervals) if intervals else -1

        # The short jobs (1 and 2) should not finish later in the reoptimized
        # allocation than in the plain System (1) allocation.
        for job_id in (1, 2):
            assert mean_completion_interval(reopt, job_id) <= max(
                mean_completion_interval(best, job_id), mean_completion_interval(reopt, job_id)
            )
        # And the weighted average position of small-job work must be at least
        # as early (the objective explicitly minimizes it).
        def weighted_midpoint(solution, job_id):
            total, acc = 0.0, 0.0
            for (t, c, j), w in solution.allocations.items():
                if j != job_id:
                    continue
                lo, hi = solution.interval_bounds[t]
                acc += w * 0.5 * (lo + hi)
                total += w
            return acc / total if total else 0.0

        assert (
            weighted_midpoint(reopt, 1) + weighted_midpoint(reopt, 2)
            <= weighted_midpoint(best, 1) + weighted_midpoint(best, 2) + 1e-6
        )

    def test_generous_objective_allows_reoptimization(self):
        problem = make_problem()
        reopt = reoptimize_allocation(problem, 10.0)
        assert reopt.max_weighted_flow_of_allocation() <= 10.0 * (1 + 1e-3)

    def test_empty_problem(self):
        problem = MaxStretchProblem(resources=(), jobs=())
        solution = reoptimize_allocation(problem, 1.0)
        assert solution.allocations == {}
