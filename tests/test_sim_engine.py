"""Unit tests for the simulation engine (:mod:`repro.simulation.engine`)."""

from __future__ import annotations

import pytest

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.schedulers.base import Scheduler
from repro.schedulers.priority import FCFSScheduler, SRPTScheduler
from repro.simulation.engine import SimulationEngine, simulate
from repro.simulation.events import ArrivalEvent, CompletionEvent
from repro.simulation.state import Assignment


@pytest.fixture
def instance() -> Instance:
    platform = Platform.uniform([1.0, 1.0], databanks=["db"])
    jobs = [
        Job(0, release=0.0, size=4.0, databank="db"),
        Job(1, release=1.0, size=2.0, databank="db"),
        Job(2, release=6.0, size=2.0, databank="db"),
    ]
    return Instance(jobs, platform)


class TestBasicExecution:
    def test_all_jobs_complete(self, instance):
        result = simulate(instance, FCFSScheduler())
        assert set(result.completions) == {0, 1, 2}
        result.schedule.validate(instance)

    def test_completions_are_exact_for_fcfs(self, instance):
        # FCFS with divisibility on 2 unit-speed machines (total speed 2):
        # job 0 runs [0, 2] on both, job 1 runs [2, 3], job 2 [6, 7].
        result = simulate(instance, FCFSScheduler())
        assert result.completions[0] == pytest.approx(2.0)
        assert result.completions[1] == pytest.approx(3.0)
        assert result.completions[2] == pytest.approx(7.0)

    def test_idle_period_handled(self, instance):
        # Job 2 arrives at t=6 after the system drained at t=3.
        result = simulate(instance, SRPTScheduler())
        assert result.completions[2] == pytest.approx(7.0)

    def test_work_conservation(self, instance):
        result = simulate(instance, SRPTScheduler())
        for job in instance.jobs:
            assert result.schedule.work_done(job.job_id) == pytest.approx(job.size, rel=1e-6)

    def test_scheduler_overhead_recorded(self, instance):
        result = simulate(instance, SRPTScheduler())
        assert result.scheduler_time >= 0.0
        assert result.n_decisions > 0

    def test_event_trace(self, instance):
        result = simulate(instance, FCFSScheduler(), record_events=True)
        arrivals = [e for e in result.events if isinstance(e, ArrivalEvent)]
        completions = [e for e in result.events if isinstance(e, CompletionEvent)]
        assert len(arrivals) == 3
        assert len(completions) == 3
        assert result.trace_lines()

    def test_empty_instance(self):
        platform = Platform.uniform([1.0], databanks=["db"])
        instance = Instance([], platform)
        result = simulate(instance, FCFSScheduler())
        assert result.completions == {}
        assert len(result.schedule) == 0

    def test_single_job_runs_at_ideal_speed(self):
        platform = Platform.uniform([1.0, 0.5], databanks=["db"])
        instance = Instance([Job(0, release=2.0, size=6.0, databank="db")], platform)
        result = simulate(instance, SRPTScheduler())
        # Aggregate speed 3 -> 2 seconds of work -> completes at 4.
        assert result.completions[0] == pytest.approx(4.0)
        assert result.max_stretch == pytest.approx(1.0)


class TestRestrictedAvailability:
    def test_engine_rejects_illegal_assignment(self):
        platform = Platform(
            [Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 1, frozenset({"b"}))]
        )
        instance = Instance([Job(0, release=0.0, size=1.0, databank="a")], platform)

        class BadScheduler(Scheduler):
            name = "bad"

            def assign(self, state):
                return Assignment(mapping={1: 0})  # machine 1 lacks databank a

        with pytest.raises(ScheduleError):
            simulate(instance, BadScheduler())

    def test_engine_rejects_unknown_machine(self, instance):
        class BadScheduler(Scheduler):
            name = "bad-machine"

            def assign(self, state):
                return Assignment(mapping={99: 0})

        with pytest.raises(ScheduleError):
            simulate(instance, BadScheduler())

    def test_engine_rejects_inactive_job(self, instance):
        class BadScheduler(Scheduler):
            name = "bad-job"

            def assign(self, state):
                return Assignment(mapping={0: 2})  # job 2 not released at t=0

        with pytest.raises(ScheduleError):
            simulate(instance, BadScheduler())

    def test_priority_scheduler_respects_databanks(self):
        platform = Platform(
            [Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 1, frozenset({"b"}))]
        )
        jobs = [
            Job(0, release=0.0, size=2.0, databank="a"),
            Job(1, release=0.0, size=2.0, databank="b"),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, SRPTScheduler())
        result.schedule.validate(instance)
        # Each job can only use its own machine, so both complete at t=2.
        assert result.completions[0] == pytest.approx(2.0)
        assert result.completions[1] == pytest.approx(2.0)


class TestEngineRobustness:
    def test_deadlock_detection(self, instance):
        class LazyScheduler(Scheduler):
            """Never assigns anything: the engine must detect the abandon."""

            name = "lazy"

            def assign(self, state):
                return Assignment.idle()

        with pytest.raises(ScheduleError, match="unscheduled with no future event"):
            simulate(instance, LazyScheduler())

    def test_livelock_detection(self, instance):
        class StallingScheduler(Scheduler):
            """Always asks to be called again immediately."""

            name = "staller"

            def assign(self, state):
                return Assignment(mapping={}, valid_until=state.time)

        with pytest.raises(ScheduleError, match="zero-length steps"):
            simulate(instance, StallingScheduler())

    def test_max_steps_overflow_detection(self, instance):
        class CreepingScheduler(Scheduler):
            """Advances by genuinely positive but absurdly small steps.

            Each step moves time forward, so the zero-length-stall counter
            never fires; only the ``max_steps`` bound catches the live-lock.
            """

            name = "creeper"

            def assign(self, state):
                return Assignment(mapping={0: 0}, valid_until=state.time + 1e-9)

        engine = SimulationEngine(instance, CreepingScheduler(), max_steps=50)
        with pytest.raises(ScheduleError, match="exceeded 50 steps"):
            engine.run()

    def test_default_max_steps_scales_with_instance(self, instance):
        engine = SimulationEngine(instance, FCFSScheduler())
        assert engine.max_steps is None  # derived inside run()
        result = engine.run()
        assert set(result.completions) == {0, 1, 2}

    def test_valid_until_horizon_respected(self):
        platform = Platform.uniform([1.0], databanks=["db"])
        instance = Instance([Job(0, release=0.0, size=4.0, databank="db")], platform)

        class ChunkingScheduler(Scheduler):
            """Works in 1-second chunks, forcing frequent re-decisions."""

            name = "chunker"
            calls = 0

            def assign(self, state):
                self.calls += 1
                return Assignment(mapping={0: 0}, valid_until=state.time + 1.0)

        scheduler = ChunkingScheduler()
        result = simulate(instance, scheduler)
        assert result.completions[0] == pytest.approx(4.0)
        assert scheduler.calls >= 4

    def test_adjacent_slices_merged(self, instance):
        result = simulate(instance, FCFSScheduler())
        # Job 0 is processed continuously on each machine: one merged slice per machine.
        slices = result.schedule.slices_for_job(0)
        assert len(slices) == 2


class TestArrivalBatching:
    def test_simultaneous_arrivals_one_callback(self):
        platform = Platform.uniform([1.0, 1.0], databanks=["db"])
        jobs = [
            Job(0, release=1.0, size=2.0, databank="db"),
            Job(1, release=1.0, size=2.0, databank="db"),
            Job(2, release=4.0, size=1.0, databank="db"),
        ]
        instance = Instance(jobs, platform)

        batches: list[list[int]] = []

        class RecordingScheduler(SRPTScheduler):
            def on_arrivals(self, state, arrived):
                batches.append([job.job_id for job in arrived])
                super().on_arrivals(state, arrived)

        result = simulate(instance, RecordingScheduler())
        assert batches == [[0, 1], [2]]
        assert set(result.completions) == {0, 1, 2}

    def test_batched_release_matches_sequential_release_semantics(self):
        # Two simultaneous jobs on one machine under SRPT: the smaller runs
        # first regardless of how the releases were delivered.
        platform = Platform.uniform([1.0], databanks=["db"])
        jobs = [
            Job(0, release=0.0, size=3.0, databank="db"),
            Job(1, release=0.0, size=1.0, databank="db"),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, SRPTScheduler())
        assert result.completions[1] == pytest.approx(1.0)
        assert result.completions[0] == pytest.approx(4.0)
