"""Tests for the content-addressed cross-run solver-state bank.

The bank's contract is strictly *accelerator, not oracle*: with the scipy
backend every banked answer is bitwise identical to the cold solve, so a
whole campaign run with the bank on must produce the exact record set of
the bank-off run -- and, through replicate-affinity lane placement, the
exact record set of the serial run at any worker count.  Warm HiGHS bases
shift results only at solver tolerance, which the two-tier A/B gate of
``repro.experiments.ab`` covers.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.experiments.ab import compare_record_sets
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import CampaignCheckpoint
from repro.experiments.overhead import OVERHEAD_TABLE_HEADERS, scheduling_overhead
from repro.experiments.runner import (
    ExperimentResults,
    _lane_assignments,
    campaign_tasks,
    run_campaign,
)
from repro.lp.backends import highs_available, make_backend, record_lp_probes
from repro.lp.bank import (
    BankBucket,
    SolverStateBank,
    instance_content_key,
    problem_signature,
)
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import generate_instance

from helpers import make_uniform_instance

requires_highs = pytest.mark.skipif(
    not highs_available(),
    reason="neither highspy nor scipy-vendored HiGHS bindings are available",
)

ONLINE_KEYS = ("online", "online-edf", "online-egdf", "online-nonopt")

#: Small but LP-heavy design: two configs x two replicates, all four on-line
#: variants sharing each realized instance plus one list scheduler.
CONFIGS = [
    ExperimentConfig(
        name="bank-a", n_clusters=2, n_databanks=2, availability=0.6,
        density=1.0, processors_per_cluster=3, window=18.0, max_jobs=8,
    ),
    ExperimentConfig(
        name="bank-b", n_clusters=3, n_databanks=3, availability=0.9,
        density=1.5, processors_per_cluster=3, window=18.0, max_jobs=8,
    ),
]
KEYS = ONLINE_KEYS + ("swrpt",)
REPLICATES = 2
SEED = 31


def _campaign(
    configs=CONFIGS, *, n_workers=1, state_bank=True, solver_backend=None,
    checkpoint=None, resume=False,
) -> ExperimentResults:
    cfgs = [replace(c, state_bank=state_bank) for c in configs]
    if solver_backend is not None:
        cfgs = [replace(c, solver_backend=solver_backend) for c in cfgs]
    return run_campaign(
        cfgs, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
        n_workers=n_workers, checkpoint=checkpoint, resume=resume,
    )


def _instance(config: ExperimentConfig, seed: int = 5):
    return generate_instance(config.platform_spec(), config.workload_spec(), rng=seed)


# -- bank container ------------------------------------------------------------------


class TestSolverStateBank:
    def test_acquire_miss_then_hit_once_warm(self):
        bank = SolverStateBank()
        bucket, hit = bank.acquire("k1")
        assert not hit  # first sight: cold bucket
        bucket2, hit2 = bank.acquire("k1")
        assert bucket2 is bucket
        assert not hit2  # still cold: nothing was published yet
        bucket.n_publications += 1
        _, hit3 = bank.acquire("k1")
        assert hit3
        assert bank.stats() == {"n_buckets": 1, "n_hits": 1, "n_misses": 2}

    def test_lru_eviction_bounds_resident_buckets(self):
        bank = SolverStateBank(max_buckets=2)
        a, _ = bank.acquire("a")
        bank.acquire("b")
        bank.acquire("c")  # evicts "a"
        assert len(bank) == 2
        fresh, hit = bank.acquire("a")
        assert fresh is not a and not hit

    def test_clear_drops_buckets_and_counters(self):
        bank = SolverStateBank()
        bucket, _ = bank.acquire("k")
        bucket.n_publications = 1
        bank.acquire("k")
        bank.clear()
        assert len(bank) == 0
        assert bank.stats() == {"n_buckets": 0, "n_hits": 0, "n_misses": 0}

    def test_bucket_trim_bounds_stored_solutions(self):
        bucket = BankBucket()
        for i in range(300):
            bucket.sys1[(i,)] = object()
            bucket.sys2[(i, 1.0)] = object()
            bucket.trim()
        assert len(bucket.sys1) == 128 and len(bucket.sys2) == 128
        assert (299,) in bucket.sys1 and (0,) not in bucket.sys1  # newest survive


# -- content addressing --------------------------------------------------------------


class TestContentKey:
    def test_key_is_stable_across_realizations(self):
        # The same (config, seed) realized twice -- e.g. once per A/B leg,
        # in different processes -- must map to the same bucket.
        assert instance_content_key(_instance(CONFIGS[0])) == instance_content_key(
            _instance(CONFIGS[0])
        )

    def test_key_ignores_solver_knobs(self):
        # Backend / bank flags shape the *run*, not the instance: both A/B
        # legs of one triple share the key.
        knobbed = replace(CONFIGS[0], solver_backend="scipy", state_bank=False)
        assert instance_content_key(_instance(knobbed)) == instance_content_key(
            _instance(CONFIGS[0])
        )

    def test_key_separates_replicates_and_configs(self):
        keys = {
            instance_content_key(_instance(config, seed))
            for config in CONFIGS
            for seed in (5, 6)
        }
        assert len(keys) == 4

    def test_key_sees_job_and_platform_content(self):
        base = make_uniform_instance([4.0, 2.0], [0.0, 1.0])
        bigger = make_uniform_instance([4.0, 3.0], [0.0, 1.0])
        later = make_uniform_instance([4.0, 2.0], [0.0, 2.0])
        slower = make_uniform_instance([4.0, 2.0], [0.0, 1.0], cycle_times=[2.0])
        keys = {instance_content_key(i) for i in (base, bigger, later, slower)}
        assert len(keys) == 4

    def test_problem_signature_tracks_remaining_work(self):
        instance = make_uniform_instance([4.0, 2.0], [0.0, 1.0])
        full = problem_from_instance(instance, now=1.0)
        partial = problem_from_instance(instance, now=1.0, remaining={0: 3.0, 1: 2.0})
        assert problem_signature(full) != problem_signature(partial)
        assert problem_signature(full) == problem_signature(
            problem_from_instance(instance, now=1.0)
        )


# -- reuse is bitwise transparent ----------------------------------------------------


class TestBankTransparency:
    @pytest.mark.parametrize("variant", ONLINE_KEYS)
    def test_banked_run_bitwise_equals_cold_run_on_scipy(self, variant):
        config = CONFIGS[1]
        instance = _instance(config)
        bank = SolverStateBank()
        results = {}
        for publisher in ONLINE_KEYS:  # warm the bucket with every variant
            if publisher == variant:
                continue
            scheduler = make_scheduler(
                publisher, **{**config.scheduler_options_for(publisher),
                              "solver_backend": "scipy", "state_bank": bank})
            simulate(instance, scheduler)
        for label, state_bank in (("banked", bank), ("cold", None)):
            options = config.scheduler_options_for(variant)
            options.update(solver_backend="scipy", state_bank=state_bank)
            with record_lp_probes() as stats:
                result = simulate(instance, make_scheduler(variant, **options))
            results[label] = result
            if label == "banked":
                assert stats.n_bank_hits == 1
                assert stats.n_primal_reuses > 0
        banked, cold = results["banked"], results["cold"]
        assert banked.max_stretch == cold.max_stretch
        assert banked.sum_stretch == cold.sum_stretch
        assert banked.makespan == cold.makespan
        assert banked.sum_flow == cold.sum_flow

    def test_bank_cuts_lp_solves_for_consumers(self):
        config = CONFIGS[0]
        instance = _instance(config)
        bank = SolverStateBank()
        probes = {}
        for variant in ONLINE_KEYS:
            options = config.scheduler_options_for(variant)
            options.update(solver_backend="scipy", state_bank=bank)
            probes[variant] = simulate(
                instance, make_scheduler(variant, **options)
            ).lp_probes
        publisher = probes[ONLINE_KEYS[0]]
        assert publisher.n_bank_misses == 1 and publisher.n_bank_hits == 0
        for variant in ONLINE_KEYS[1:]:
            consumer = probes[variant]
            assert consumer.n_bank_hits == 1
            assert consumer.n_primal_reuses > 0
            assert consumer.n_probes < publisher.n_probes

    def test_non_bank_values_are_ignored(self):
        # ExperimentConfig hands a plain bool to every construction site;
        # only the campaign workers swap in a live bank.
        scheduler = make_scheduler("online", state_bank=True)
        assert scheduler.state_bank is None
        scheduler = make_scheduler("online", state_bank=SolverStateBank())
        assert scheduler.state_bank is not None


# -- campaign invariants -------------------------------------------------------------


class TestCampaignInvariants:
    @pytest.fixture(scope="class")
    def serial_bank_on(self) -> ExperimentResults:
        return _campaign(n_workers=1, state_bank=True)

    @pytest.mark.parametrize("n_workers", [2, 4])
    def test_sharded_bit_identical_to_serial_with_bank(
        self, serial_bank_on, n_workers
    ):
        sharded = _campaign(n_workers=n_workers, state_bank=True)
        assert sharded.result_set() == serial_bank_on.result_set()

    def test_sharded_bit_identical_to_serial_without_bank(self):
        off_serial = _campaign(n_workers=1, state_bank=False)
        off_sharded = _campaign(n_workers=2, state_bank=False)
        assert off_sharded.result_set() == off_serial.result_set()

    def test_bank_bitwise_invisible_on_scipy_backend(self):
        on = _campaign(n_workers=2, state_bank=True, solver_backend="scipy")
        off = _campaign(n_workers=2, state_bank=False, solver_backend="scipy")
        keep = ("config", "replicate", "scheduler", "max_stretch", "sum_stretch",
                "sum_flow", "max_flow", "makespan")

        def strip(results):
            return [{k: row[k] for k in keep} for row in results.result_set()]

        assert strip(on) == strip(off)

    def test_bank_on_off_passes_ab_gate_on_default_backend(self, serial_bank_on):
        off = _campaign(n_workers=1, state_bank=False)
        report = compare_record_sets(
            serial_bank_on, off, backend_a="bank-on", backend_b="bank-off"
        )
        assert report.equivalent, (
            report.objective_mismatches, report.aggregate_mismatches
        )

    def test_kill_and_resume_with_warm_bank(self, tmp_path):
        # An interrupted bank-on campaign resumed mid-replicate: restored
        # triples never republish, so resumed consumers may run cold -- the
        # records must still come back exactly once and (on scipy) bitwise
        # equal to the uninterrupted run.
        uninterrupted = _campaign(n_workers=1, solver_backend="scipy")
        full = tmp_path / "full.jsonl"
        _campaign(n_workers=1, solver_backend="scipy", checkpoint=full)
        lines = full.read_text().splitlines()
        partial = tmp_path / "partial.jsonl"
        # Keep the header, three whole records and a torn fourth line, so
        # the cut lands *inside* the first (config, replicate) group.
        partial.write_text("\n".join(lines[:4]) + "\n" + lines[4][: 10])
        resumed = _campaign(
            n_workers=2, solver_backend="scipy", checkpoint=partial, resume=True
        )
        assert resumed.result_set() == uninterrupted.result_set()
        done = CampaignCheckpoint(partial).load()
        assert len(done) == len(CONFIGS) * REPLICATES * len(KEYS)  # exactly once


class TestLaneAssignments:
    def test_groups_are_dealt_round_robin_by_first_appearance(self):
        tasks = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        lanes = _lane_assignments(tasks, 2)
        assert len(lanes) == len(tasks)
        by_group = {}
        for task, lane in zip(tasks, lanes):
            by_group.setdefault(task.triple[:2], set()).add(lane)
        # A whole (config, replicate) group lives on one lane...
        assert all(len(lanes_used) == 1 for lanes_used in by_group.values())
        # ...and the four groups alternate between the two lanes.
        ordered = [min(v) for v in by_group.values()]
        assert ordered == [0, 1, 0, 1]

    def test_single_worker_uses_one_lane(self):
        tasks = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        assert set(_lane_assignments(tasks, 1)) == {0}


# -- solver-layer pieces -------------------------------------------------------------


class TestReplanContextBank:
    def test_publish_populates_bucket_and_consumer_reuses(self):
        instance = make_uniform_instance([6.0, 3.0, 2.0], [0.0, 0.5, 1.0])
        bank = SolverStateBank()

        publisher = ReplanContext(instance, solver_backend="scipy", state_bank=bank)
        problem = publisher.build_problem(1.0, {0: 5.0, 1: 3.0, 2: 2.0})
        solution = publisher.solve_max_stretch(problem)
        publisher.reoptimize(problem, solution.objective)
        publisher.publish()
        publisher.close()

        bucket, hit = bank.acquire(instance_content_key(instance))
        assert hit and bucket.warm
        assert bucket.n_publications == 1
        assert bucket.last_objective == solution.objective
        assert bucket.sys1 and bucket.sys2

        consumer = ReplanContext(instance, solver_backend="scipy", state_bank=bank)
        problem2 = consumer.build_problem(1.0, {0: 5.0, 1: 3.0, 2: 2.0})
        with record_lp_probes() as stats:
            reused = consumer.solve_max_stretch(problem2)
            consumer.reoptimize(problem2, reused.objective)
        consumer.close()
        assert stats.n_probes == 0  # both systems answered from the bank
        assert stats.n_primal_reuses == 2
        assert reused.objective == solution.objective
        assert reused.problem is problem2  # rebound onto the consumer's problem

    def test_publish_without_bank_is_a_noop(self):
        instance = make_uniform_instance([4.0, 2.0], [0.0, 1.0])
        context = ReplanContext(instance, solver_backend="scipy")
        context.publish()  # must not raise
        context.close()

    def test_finalize_hook_publishes_through_the_engine(self):
        config = CONFIGS[0]
        instance = _instance(config)
        bank = SolverStateBank()
        options = config.scheduler_options_for("online")
        options.update(solver_backend="scipy", state_bank=bank)
        simulate(instance, make_scheduler("online", **options))
        bucket, hit = bank.acquire(instance_content_key(instance))
        assert hit and bucket.n_publications == 1


class TestFeasibleSideCarry:
    def test_feasible_cap_preserves_the_optimum(self):
        instance = make_uniform_instance([5.0, 3.0, 2.0], [0.0, 1.0, 2.0])
        problem = problem_from_instance(instance, now=2.0)
        cold = minimize_max_weighted_flow(problem)
        capped = minimize_max_weighted_flow(problem, feasible_cap=cold.objective)
        assert capped.objective == cold.objective
        loose = minimize_max_weighted_flow(problem, feasible_cap=cold.objective * 4)
        assert loose.objective == cold.objective

    def test_shrinking_active_set_skips_the_winning_resolve(self):
        # Replanning with the same jobs but strictly less remaining work:
        # the previous S* stays feasible and caps the milestone search.
        instance = make_uniform_instance([6.0, 4.0], [0.0, 0.0])
        context = ReplanContext(instance, solver_backend="scipy")
        first = context.build_problem(0.0, {0: 6.0, 1: 4.0})
        cold = context.solve_max_stretch(first)
        shrunk = context.build_problem(1.0, {0: 5.0, 1: 3.0})
        assert context._feasible_cap(shrunk) == cold.objective
        grown = context.build_problem(1.0, {0: 5.0, 1: 4.5})
        assert context._feasible_cap(grown) is None
        context.close()

    def test_on_arrival_growth_never_caps(self):
        # The default policy only replans when new jobs arrive, so the
        # carried cap must never fire there (protects the probe-count gates).
        instance = make_uniform_instance([6.0, 4.0], [0.0, 1.0])
        context = ReplanContext(instance, solver_backend="scipy")
        first = context.build_problem(0.0, {0: 6.0})
        context.solve_max_stretch(first)
        second = context.build_problem(1.0, {0: 5.0, 1: 4.0})
        assert context._feasible_cap(second) is None
        context.close()


@requires_highs
class TestSeriesStateRoundTrip:
    def test_export_import_round_trip(self):
        instance = make_uniform_instance([5.0, 3.0, 2.0], [0.0, 1.0, 2.0])
        backend = make_backend("highs")
        problem = problem_from_instance(instance, now=2.0)
        solution = minimize_max_weighted_flow(problem, backend=backend)
        # Export before close: closing resets the per-run series state
        # (publish() in ReplanContext exports at finalize, pre-close).
        payload = backend.export_series_state()
        backend.close()
        assert payload  # the solve left at least one warm series

        warmed = make_backend("highs")
        warmed.import_series_state(payload)
        reexported = warmed.export_series_state()
        assert set(reexported) == set(payload)
        for series, arrays in payload.items():
            assert all(
                np.array_equal(a, b) for a, b in zip(reexported[series], arrays)
            )
        resolved = minimize_max_weighted_flow(problem, backend=warmed)
        assert resolved.objective == pytest.approx(solution.objective, rel=1e-9)
        warmed.close()

    def test_import_tolerates_empty_payload(self):
        backend = make_backend("highs")
        backend.import_series_state(None)
        backend.import_series_state({})
        assert backend.export_series_state() is None
        backend.close()


# -- overhead surface ----------------------------------------------------------------


class TestOverheadColumns:
    def test_bank_columns_populate_with_a_live_bank(self):
        kwargs = dict(
            scheduler_keys=("online", "online-edf"), n_clusters=2, n_databanks=2,
            window=12.0, max_jobs=6, replicates=2, solver_backend="scipy",
        )
        cold = scheduling_overhead(state_bank=False, **kwargs)
        warm = scheduling_overhead(state_bank=True, **kwargs)
        assert all(r.mean_bank_hits == 0 and r.mean_primal_reused == 0 for r in cold)
        by_name = {r.scheduler: r for r in warm}
        assert by_name["Online-EDF"].mean_bank_hits == 1.0
        assert by_name["Online-EDF"].mean_primal_reused > 0
        assert len(warm[0].cells()) == len(OVERHEAD_TABLE_HEADERS)
