"""Fault injection: timelines, loss models, engine behavior under outages.

The headline contracts:

* an **empty** fault timeline is bit-identical to the fault-free engine --
  ``faults=FaultTimeline()`` and ``faults=None`` produce the same schedule,
  the same completions, the same everything;
* machines never process work while down (no slice overlaps an outage);
* jobs whose every eligible machine is permanently gone are *parked* and
  scored with the infinite-stretch starvation bound, never crashed on;
* generated traces are deterministic under a seed and survive a JSONL
  round-trip exactly.
"""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ModelError, ScheduleError
from repro.core.job import Job
from repro.core.instance import Instance
from repro.core.platform import Platform
from repro.schedulers.offline import OfflineScheduler
from repro.schedulers.priority import FCFSScheduler, SRPTScheduler
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.simulation.faults import (
    FaultEvent,
    FaultTimeline,
    _coerce_timeline,
    apply_loss,
    load_fault_timeline,
    save_fault_timeline,
)
from repro.workload.faults import FaultSpec, generate_fault_timeline

from helpers import make_uniform_instance


class TestApplyLoss:
    def test_resume_keeps_remaining(self):
        assert apply_loss(3.0, 10.0, loss_model="resume") == 3.0

    def test_restart_restores_full_size(self):
        assert apply_loss(3.0, 10.0, loss_model="restart") == 10.0

    def test_restart_with_checkpoint_keeps_saved_progress(self):
        # 7 units processed, half checkpointed: 3.5 survive the failure.
        assert apply_loss(3.0, 10.0, loss_model="restart", checkpoint_fraction=0.5) == pytest.approx(6.5)

    def test_restart_never_exceeds_size_nor_shrinks_remaining(self):
        assert apply_loss(10.0, 10.0, loss_model="restart") == 10.0
        # Full checkpointing: nothing is lost.
        assert apply_loss(2.0, 10.0, loss_model="restart", checkpoint_fraction=1.0) == 10.0 - 8.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ModelError, match="unknown loss model"):
            apply_loss(1.0, 2.0, loss_model="checkpointless")


class TestFaultTimeline:
    def test_event_rejects_negative_and_non_finite_times(self):
        with pytest.raises(ModelError):
            FaultEvent(time=-1.0, machine_id=0, up=False)
        with pytest.raises(ModelError):
            FaultEvent(time=math.inf, machine_id=0, up=False)

    def test_empty_timeline_is_falsy(self):
        assert not FaultTimeline()
        assert bool(FaultTimeline.from_intervals([(0, 1.0, 2.0)]))

    def test_up_without_down_rejected(self):
        with pytest.raises(ModelError, match="without being down"):
            FaultTimeline([FaultEvent(time=1.0, machine_id=0, up=True)])

    def test_double_down_rejected(self):
        with pytest.raises(ModelError, match="already down"):
            FaultTimeline(
                [
                    FaultEvent(time=1.0, machine_id=0, up=False),
                    FaultEvent(time=2.0, machine_id=0, up=False),
                ]
            )

    def test_interval_round_trip(self):
        rows = [(0, 1.0, 2.5), (1, 0.5, None), (0, 4.0, None)]
        timeline = FaultTimeline.from_intervals(rows, loss_model="restart", checkpoint_fraction=0.25)
        assert timeline.intervals() == sorted(rows, key=lambda r: (r[1], r[0]))
        assert timeline.loss_model == "restart"
        assert timeline.checkpoint_fraction == 0.25
        assert timeline.machine_ids() == (0, 1)

    def test_interval_must_end_after_it_starts(self):
        with pytest.raises(ModelError, match="must end after"):
            FaultTimeline.from_intervals([(0, 2.0, 2.0)])

    def test_restrict_and_queries(self):
        timeline = FaultTimeline.from_intervals([(0, 1.0, 2.0), (1, 0.5, 3.0), (2, 4.0, None)])
        only = timeline.restrict_to([1])
        assert only.machine_ids() == (1,)
        assert timeline.initial_down(1.5) == {0, 1}
        assert [e.time for e in timeline.transitions_after(2.0)] == [2.0, 3.0, 4.0]

    def test_jsonl_round_trip(self, tmp_path):
        timeline = FaultTimeline.from_intervals(
            [(0, 1.0, 2.5), (1, 0.25, None)],
            loss_model="restart",
            checkpoint_fraction=0.5,
        )
        path = tmp_path / "faults.jsonl"
        save_fault_timeline(timeline, path)
        loaded = load_fault_timeline(path)
        assert loaded.intervals() == timeline.intervals()
        assert loaded.loss_model == "restart"
        assert loaded.checkpoint_fraction == 0.5

    def test_coerce_accepts_all_spellings(self, tmp_path):
        timeline = FaultTimeline.from_intervals([(0, 1.0, 2.0)])
        assert _coerce_timeline(None) is None
        assert _coerce_timeline(timeline) is timeline
        assert _coerce_timeline([(0, 1.0, 2.0)]).intervals() == timeline.intervals()
        path = tmp_path / "t.jsonl"
        save_fault_timeline(timeline, path)
        assert _coerce_timeline(str(path)).intervals() == timeline.intervals()


def outage_free(schedule, timeline) -> bool:
    """No work slice overlaps an outage of its machine."""
    for machine_id, down, up in timeline.intervals():
        for s in schedule.slices_on_machine(machine_id):
            hi = math.inf if up is None else up
            if s.end > down + 1e-12 and s.start < hi - 1e-12:
                return False
    return True


class TestEngineUnderFaults:
    def test_single_machine_outage_delays_completion(self):
        instance = make_uniform_instance([4.0], [0.0], cycle_times=(1.0,))
        faults = FaultTimeline.from_intervals([(0, 1.0, 3.0)])
        result = simulate(instance, FCFSScheduler(), faults=faults)
        # 1s of work, a 2s outage, then the remaining 3s: done at 6.
        assert result.completions[0] == pytest.approx(6.0)
        assert outage_free(result.schedule, faults)

    def test_restart_loss_model_repays_lost_progress(self):
        instance = make_uniform_instance([4.0], [0.0], cycle_times=(1.0,))
        faults = FaultTimeline.from_intervals([(0, 1.0, 3.0)], loss_model="restart")
        result = simulate(instance, FCFSScheduler(), faults=faults)
        # The first second of progress is lost: full 4s rerun from t=3.
        assert result.completions[0] == pytest.approx(7.0)

    def test_empty_timeline_is_bit_identical_to_fault_free(self):
        instance = make_uniform_instance(
            [3.0, 1.0, 2.0, 4.0], [0.0, 0.5, 1.0, 6.0], cycle_times=(1.0, 2.0)
        )
        for scheduler_key in ("fcfs", "srpt", "online"):
            plain = simulate(instance, make_scheduler(scheduler_key))
            empty = simulate(
                instance, make_scheduler(scheduler_key), faults=FaultTimeline()
            )
            assert empty.completions == plain.completions
            assert empty.schedule.slices == plain.schedule.slices
            assert empty.parked == plain.parked == {}

    def test_all_machines_permanently_down_parks_jobs(self):
        instance = make_uniform_instance([4.0, 2.0], [0.0, 0.0], cycle_times=(1.0,))
        faults = FaultTimeline.from_intervals([(0, 1.0, None)])
        result = simulate(instance, FCFSScheduler(), faults=faults)
        assert set(result.parked) == {0, 1}
        # Remaining work is sane: positive, finite, at most the job size.
        for job_id, remaining in result.parked.items():
            assert 0.0 < remaining <= instance.job(job_id).size
        assert math.isinf(result.report().max_stretch)

    def test_fault_unaware_scheduler_is_rejected(self):
        instance = make_uniform_instance([2.0], [0.0])
        faults = FaultTimeline.from_intervals([(0, 1.0, 2.0)])
        with pytest.raises(ScheduleError, match="cannot run under a fault timeline"):
            simulate(instance, OfflineScheduler(), faults=faults)

    def test_work_conserved_across_an_outage(self):
        # Two machines, one fails: the survivor absorbs the queue and every
        # unit of work is still delivered exactly once (resume model).
        instance = make_uniform_instance(
            [3.0, 3.0, 2.0], [0.0, 0.0, 0.0], cycle_times=(1.0, 1.0)
        )
        faults = FaultTimeline.from_intervals([(1, 0.5, 2.5)])
        result = simulate(instance, SRPTScheduler(), faults=faults)
        assert result.parked == {}
        assert outage_free(result.schedule, faults)
        for job in instance.jobs:
            done = sum(s.work for s in result.schedule.slices_for_job(job.job_id))
            assert done == pytest.approx(job.size)


class TestEligibilityEdgeCases:
    """The three ISSUE-mandated WAKEUP-seam edge cases."""

    def test_machine_down_exactly_at_arrival_instant(self):
        # Machine 0 dies at t=1.0 -- the very instant job 0 arrives.  The
        # transition applies before the arrival batch, so the scheduler must
        # only ever see machine 1 for this job.
        instance = make_uniform_instance([2.0], [1.0], cycle_times=(1.0, 1.0))
        faults = FaultTimeline.from_intervals([(0, 1.0, 10.0)])
        result = simulate(instance, FCFSScheduler(), faults=faults)
        assert not result.schedule.slices_on_machine(0)
        assert result.completions[0] == pytest.approx(3.0)

    def test_last_eligible_machine_fails_parks_job(self):
        # Databank "a" lives only on machine 0.  When it dies mid-run, job 0
        # parks (starvation bound, stretch inf) while job 1 finishes cleanly
        # on the other site.
        platform = Platform.from_clusters([(1, 1.0, ["a"]), (1, 1.0, ["b"])])
        jobs = [
            Job(0, release=0.0, size=3.0, databank="a"),
            Job(1, release=0.0, size=2.0, databank="b"),
        ]
        instance = Instance(jobs, platform)
        faults = FaultTimeline.from_intervals([(0, 1.0, None)])
        result = simulate(instance, FCFSScheduler(), faults=faults)
        assert set(result.parked) == {0}
        assert result.parked[0] == pytest.approx(2.0)
        assert result.completions[1] == pytest.approx(2.0)
        report = result.report()
        assert math.isinf(report.max_stretch)

    @pytest.mark.parametrize("scheduler_key", ["online", "swrpt"])
    def test_up_during_idle_gap_is_a_clean_speculation_miss(self, scheduler_key):
        # An UP transition lands inside the idle gap between the first batch
        # draining (by t~4) and the t=10 arrival.  Speculative idle-gap
        # pre-solves must treat the availability change as a plain miss:
        # same completions, same schedule as the unspeculated run.
        instance = make_uniform_instance(
            [2.0, 1.0, 3.0], [0.0, 0.0, 10.0], cycle_times=(1.0, 1.0)
        )
        faults = FaultTimeline.from_intervals([(1, 0.5, 7.0)])
        options = {"speculate": True} if scheduler_key == "online" else {}
        plain = simulate(instance, make_scheduler(scheduler_key), faults=faults)
        spec = simulate(instance, make_scheduler(scheduler_key, **options), faults=faults)
        assert spec.completions == plain.completions
        assert spec.schedule.slices == plain.schedule.slices
        assert outage_free(plain.schedule, faults)


class TestGeneratedTraces:
    PLATFORM = Platform.from_clusters(
        [(2, 1.0, ["a", "b"]), (2, 2.0, ["b", "c"]), (1, 1.5, ["a", "c"])]
    )
    SPEC = FaultSpec(mtbf=4.0, mttr=1.5, horizon=30.0)

    def test_generation_is_deterministic_per_seed(self):
        one = generate_fault_timeline(self.PLATFORM, self.SPEC, rng=7)
        two = generate_fault_timeline(self.PLATFORM, self.SPEC, rng=7)
        other = generate_fault_timeline(self.PLATFORM, self.SPEC, rng=8)
        assert one.intervals() == two.intervals()
        assert one.intervals() != other.intervals()

    def test_machine_fraction_limits_the_fault_prone_set(self):
        spec = FaultSpec(mtbf=1.0, mttr=0.5, horizon=50.0, machine_fraction=0.4)
        timeline = generate_fault_timeline(self.PLATFORM, spec, rng=3)
        assert len(timeline.machine_ids()) <= 2  # 40% of 5 machines

    def test_spec_validation(self):
        with pytest.raises(ModelError):
            FaultSpec(mtbf=0.0, mttr=1.0, horizon=10.0)
        with pytest.raises(ModelError):
            FaultSpec(mtbf=1.0, mttr=1.0, horizon=10.0, machine_fraction=1.5)
        with pytest.raises(ModelError):
            FaultSpec(mtbf=1.0, mttr=1.0, horizon=10.0, loss_model="meltdown")

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("scheduler_key", ["fcfs", "srpt", "online"])
    def test_property_suite_under_generated_faults(self, seed, scheduler_key):
        """Seeded chaos: no crash, full accounting, no work while down."""
        jobs = [
            Job(0, release=0.0, size=4.0, databank="a"),
            Job(1, release=0.5, size=2.0, databank="b"),
            Job(2, release=1.0, size=6.0, databank="c"),
            Job(3, release=3.0, size=1.0, databank="b"),
            Job(4, release=5.0, size=3.0, databank="a"),
            Job(5, release=8.0, size=2.5, databank="c"),
        ]
        instance = Instance(jobs, self.PLATFORM)
        timeline = generate_fault_timeline(self.PLATFORM, self.SPEC, rng=seed)
        result = simulate(instance, make_scheduler(scheduler_key), faults=timeline)
        # Every job is either completed or parked -- never both, never lost.
        assert set(result.completions) | set(result.parked) == {j.job_id for j in jobs}
        assert not set(result.completions) & set(result.parked)
        for job_id, done in result.completions.items():
            assert math.isfinite(done) and done >= instance.job(job_id).release
        for job_id, remaining in result.parked.items():
            assert 0.0 < remaining <= instance.job(job_id).size
        assert outage_free(result.schedule, timeline)
        report = result.report()
        if result.parked:
            assert math.isinf(report.max_stretch)
        else:
            assert math.isfinite(report.max_stretch)
