"""Tests of the submission-source seam in the simulation kernel.

The contract under test: feeding jobs through a source incrementally
(service mode / trace replay) produces schedules *bit-identical* to batch
mode, where every arrival is queued up front.  Exact float equality
throughout -- no tolerances.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance, LiveInstance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.schedulers.registry import SERVICE_SCHEDULERS, make_scheduler
from repro.simulation.engine import SimulationEngine, simulate
from repro.simulation.source import InstanceSource, TraceSource


def two_cluster_platform() -> Platform:
    return Platform(
        [
            Machine(0, cycle_time=0.5, cluster_id=0, databanks=frozenset({"a", "c"})),
            Machine(1, cycle_time=0.5, cluster_id=0, databanks=frozenset({"a", "c"})),
            Machine(2, cycle_time=1.0, cluster_id=1, databanks=frozenset({"b", "c"})),
        ]
    )


def staggered_jobs() -> list[Job]:
    # Includes simultaneous releases (jobs 2 and 3) and a long quiet gap
    # before job 5, exercising arrival batching and the idle jump.
    return [
        Job(0, release=0.0, size=8.0, databank="a"),
        Job(1, release=1.0, size=2.0, databank="b"),
        Job(2, release=3.0, size=4.0, databank="c"),
        Job(3, release=3.0, size=1.0, databank="a"),
        Job(4, release=3.5, size=2.5, databank="b"),
        Job(5, release=40.0, size=5.0, databank="c"),
    ]


def signature(result) -> list[tuple]:
    return sorted(
        (s.job_id, s.machine_id, s.start, s.end, s.work) for s in result.schedule
    )


def replay_result(jobs, platform, key, **options):
    live = LiveInstance(platform)
    source = TraceSource(jobs, live_instance=live)
    engine = SimulationEngine(live, make_scheduler(key, **options), source=source)
    return engine.run()


class TestInstanceSource:
    def test_batch_engine_unchanged_by_explicit_source(self):
        instance = Instance(staggered_jobs(), two_cluster_platform())
        baseline = simulate(instance, make_scheduler("srpt"))
        explicit = SimulationEngine(
            instance, make_scheduler("srpt"), source=InstanceSource(instance)
        ).run()
        assert signature(explicit) == signature(baseline)
        assert explicit.completions == baseline.completions

    def test_exhausted_from_the_start(self):
        instance = Instance(staggered_jobs(), two_cluster_platform())
        source = InstanceSource(instance)
        assert source.exhausted


class TestLiveInstance:
    def test_admit_grows_jobs_in_order(self):
        live = LiveInstance(two_cluster_platform())
        assert live.n_jobs == 0
        live.admit(Job(0, release=0.0, size=1.0, databank="a"))
        live.admit(Job(1, release=2.0, size=1.0, databank="b"))
        assert live.n_jobs == 2
        assert [j.job_id for j in live.jobs] == [0, 1]

    def test_admit_rejects_out_of_order_release(self):
        live = LiveInstance(two_cluster_platform())
        live.admit(Job(0, release=5.0, size=1.0, databank="a"))
        with pytest.raises(ModelError, match="out of order"):
            live.admit(Job(1, release=4.0, size=1.0, databank="a"))

    def test_admit_rejects_unhosted_databank(self):
        live = LiveInstance(two_cluster_platform())
        with pytest.raises(ModelError, match="hosted on no machine"):
            live.admit(Job(0, release=0.0, size=1.0, databank="nope"))

    def test_admit_ties_broken_by_job_id(self):
        live = LiveInstance(two_cluster_platform())
        live.admit(Job(0, release=1.0, size=1.0, databank="a"))
        live.admit(Job(1, release=1.0, size=1.0, databank="a"))
        with pytest.raises(ModelError, match="out of order"):
            live.admit(Job(0, release=1.0, size=1.0, databank="a"))


class TestTraceSourceBitIdentity:
    @pytest.mark.parametrize("key", sorted(SERVICE_SCHEDULERS))
    def test_replay_matches_batch_for_every_service_scheduler(self, key):
        jobs = staggered_jobs()
        platform = two_cluster_platform()
        batch = simulate(Instance(jobs, platform), make_scheduler(key))
        replay = replay_result(jobs, platform, key)
        assert signature(replay) == signature(batch)
        assert replay.completions == batch.completions

    @pytest.mark.parametrize(
        "policy", ["on-arrival", "batched:2", "batched:0.5", "threshold:2"]
    )
    def test_replay_matches_batch_across_replan_policies(self, policy):
        jobs = staggered_jobs()
        platform = two_cluster_platform()
        batch = simulate(
            Instance(jobs, platform), make_scheduler("online", policy=policy)
        )
        replay = replay_result(jobs, platform, "online", policy=policy)
        assert signature(replay) == signature(batch)
        assert replay.completions == batch.completions

    def test_replay_matches_batch_on_generated_instance(self):
        from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

        instance = generate_instance(
            PlatformSpec(n_clusters=2, processors_per_cluster=3, n_databanks=3,
                         availability=0.6),
            WorkloadSpec(density=1.5, window=30.0, max_jobs=18),
            rng=11,
        )
        batch = simulate(instance, make_scheduler("online"))
        replay = replay_result(
            list(instance.jobs), instance.platform, "online"
        )
        assert signature(replay) == signature(batch)
        assert replay.completions == batch.completions

    def test_live_instance_grows_as_jobs_are_delivered(self):
        from repro.simulation.clock import EventQueue

        jobs = staggered_jobs()
        live = LiveInstance(two_cluster_platform())
        source = TraceSource(jobs, live_instance=live)
        source.start(EventQueue())
        # Nothing delivered yet: the live instance is empty until pulled.
        assert live.n_jobs == 0
        delivered = source.pull(0.0, 0.0)
        assert [j.job_id for j in delivered] == [0]
        assert live.n_jobs == 1
        # Simultaneous releases (t=3) are delivered as one batch.
        delivered = source.pull(0.0, 3.0)
        assert [j.job_id for j in delivered] == [1, 2, 3]
        assert live.n_jobs == 4
        # An unbounded pull (parked engine) delivers exactly the next
        # release cohort, not everything.
        delivered = source.pull(3.0, float("inf"))
        assert [j.job_id for j in delivered] == [4]
        assert not source.exhausted
        delivered = source.pull(3.5, float("inf"))
        assert [j.job_id for j in delivered] == [5]
        assert source.exhausted
        assert live.n_jobs == 6

    def test_trace_source_without_live_instance(self):
        jobs = [Job(0, release=0.0, size=1.0, databank="a")]
        source = TraceSource(jobs)
        from repro.simulation.clock import EventQueue

        source.start(EventQueue())
        assert [j.job_id for j in source.pull(0.0, 1.0)] == [0]
        assert source.exhausted
