"""Tests for the MCT / MCT-Div greedy strategies."""

from __future__ import annotations

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.schedulers.mct import MCTDivScheduler, MCTScheduler, _water_filling_completion
from repro.simulation.engine import simulate


@pytest.fixture
def two_speed_platform() -> Platform:
    return Platform.uniform([1.0, 0.5], databanks=["db"])  # speeds 1 and 2


class TestWaterFilling:
    def test_all_machines_available_immediately(self):
        # Speeds 1 and 2, both available at t=0, work 6 -> T = 2.
        assert _water_filling_completion(6.0, [1.0, 2.0], [0.0, 0.0]) == pytest.approx(2.0)

    def test_staggered_availability(self):
        # Machine A (speed 1) free at 0, machine B (speed 1) free at 4, work 6:
        # A alone does 4 units by t=4, remaining 2 split over 2 machines -> T=5.
        assert _water_filling_completion(6.0, [1.0, 1.0], [0.0, 4.0]) == pytest.approx(5.0)

    def test_single_machine(self):
        assert _water_filling_completion(3.0, [2.0], [1.0]) == pytest.approx(2.5)

    def test_later_machine_not_used_when_done_before(self):
        # Work 1 on a speed-1 machine available at 0 finishes at 1, before the
        # second machine (available at 10) could even start.
        assert _water_filling_completion(1.0, [1.0, 5.0], [0.0, 10.0]) == pytest.approx(1.0)

    def test_requires_at_least_one_machine(self):
        with pytest.raises(ValueError):
            _water_filling_completion(1.0, [], [])


class TestMCT:
    def test_chooses_fastest_machine_when_idle(self, two_speed_platform):
        instance = Instance([Job(0, release=0.0, size=4.0, databank="db")], two_speed_platform)
        result = simulate(instance, MCTScheduler())
        # Machine 1 has speed 2 -> completes at 2 (machine 0 would need 4).
        assert result.completions[0] == pytest.approx(2.0)
        assert result.schedule.machine_ids() == {1}

    def test_never_splits_jobs(self, two_speed_platform):
        jobs = [Job(i, release=0.0, size=4.0, databank="db") for i in range(3)]
        instance = Instance(jobs, two_speed_platform)
        result = simulate(instance, MCTScheduler())
        for job in jobs:
            machines = {s.machine_id for s in result.schedule.slices_for_job(job.job_id)}
            assert len(machines) == 1

    def test_non_preemptive_decisions_are_final(self, two_speed_platform):
        # A long job goes to the fast machine; a tiny job arriving just after
        # must wait for it there or use the slow machine -- MCT never revisits.
        jobs = [
            Job(0, release=0.0, size=20.0, databank="db"),
            Job(1, release=0.1, size=1.0, databank="db"),
        ]
        instance = Instance(jobs, two_speed_platform)
        result = simulate(instance, MCTScheduler())
        # Job 0 on machine 1 finishes at 10; job 1's options: machine 1 after
        # job 0 (10 + 0.5) or machine 0 alone (0.1 + 1.0) -> machine 0.
        assert result.completions[0] == pytest.approx(10.0)
        assert result.completions[1] == pytest.approx(1.1)

    def test_small_job_stretched_behind_large_one(self):
        """The failure mode highlighted in Section 5.3."""
        platform = Platform.single_machine(1.0, databanks=["db"])
        jobs = [
            Job(0, release=0.0, size=100.0, databank="db"),
            Job(1, release=1.0, size=1.0, databank="db"),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, MCTScheduler())
        stretches = result.stretches()
        assert stretches[1] == pytest.approx(100.0)  # waits for the whole scan

    def test_respects_databank_availability(self):
        platform = Platform(
            [Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 0.1, 1, frozenset({"b"}))]
        )
        instance = Instance([Job(0, release=0.0, size=2.0, databank="a")], platform)
        result = simulate(instance, MCTScheduler())
        # The much faster machine 1 cannot be used.
        assert result.schedule.machine_ids() == {0}
        result.schedule.validate(instance)


class TestMCTDiv:
    def test_uses_all_machines_when_idle(self, two_speed_platform):
        instance = Instance([Job(0, release=0.0, size=6.0, databank="db")], two_speed_platform)
        result = simulate(instance, MCTDivScheduler())
        # Aggregate speed 3 -> completes at 2, using both machines.
        assert result.completions[0] == pytest.approx(2.0)
        assert result.schedule.machine_ids() == {0, 1}

    def test_beats_mct_on_single_large_job(self, two_speed_platform):
        instance = Instance([Job(0, release=0.0, size=6.0, databank="db")], two_speed_platform)
        mct = simulate(instance, MCTScheduler())
        mct_div = simulate(instance, MCTDivScheduler())
        assert mct_div.completions[0] < mct.completions[0]

    def test_still_non_preemptive(self, two_speed_platform):
        jobs = [
            Job(0, release=0.0, size=30.0, databank="db"),
            Job(1, release=0.5, size=1.0, databank="db"),
        ]
        instance = Instance(jobs, two_speed_platform)
        result = simulate(instance, MCTDivScheduler())
        # Job 0 occupies both machines until t=10; job 1 is appended after it
        # (completion 10 + 1/3) rather than preempting.
        assert result.completions[0] == pytest.approx(10.0)
        assert result.completions[1] == pytest.approx(10.0 + 1.0 / 3.0)

    def test_schedule_valid_on_restricted_platform(self, restricted_instance):
        result = simulate(restricted_instance, MCTDivScheduler())
        result.schedule.validate(restricted_instance)
