"""Tests for the adversarial constructions (Theorems 1 and 2 instances)."""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ModelError
from repro.workload.adversarial import (
    starvation_instance,
    swrpt_lower_bound_instance,
    swrpt_lower_bound_parameters,
)


class TestStarvationInstance:
    def test_structure(self):
        instance = starvation_instance(8.0, 5)
        assert instance.n_jobs == 6
        assert instance.n_machines == 1
        big = instance.job(0)
        assert big.size == 8.0 and big.release == 0.0
        for t in range(5):
            job = instance.job(1 + t)
            assert job.size == 1.0
            assert job.release == float(t)

    def test_delta_equals_size_ratio(self):
        instance = starvation_instance(16.0, 4)
        assert instance.delta() == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            starvation_instance(1.0, 5)
        with pytest.raises(ModelError):
            starvation_instance(4.0, 0)

    def test_databank_label(self):
        instance = starvation_instance(4.0, 2, databank="db")
        assert all(j.databank == "db" for j in instance.jobs)
        assert instance.platform.databanks() == frozenset({"db"})


class TestSWRPTLowerBoundParameters:
    def test_alpha_formula(self):
        params = swrpt_lower_bound_parameters(0.3)
        assert params.alpha == pytest.approx(1.0 - 0.1)
        assert params.n >= 2
        assert params.k >= 1

    def test_parameters_grow_as_epsilon_shrinks(self):
        loose = swrpt_lower_bound_parameters(0.5)
        tight = swrpt_lower_bound_parameters(0.1)
        assert tight.n >= loose.n
        assert tight.k >= loose.k

    def test_largest_size(self):
        params = swrpt_lower_bound_parameters(0.5)
        assert params.largest_size == pytest.approx(2.0 ** (2.0 ** params.n))

    def test_epsilon_validation(self):
        with pytest.raises(ModelError):
            swrpt_lower_bound_parameters(0.0)
        with pytest.raises(ModelError):
            swrpt_lower_bound_parameters(1.0)

    def test_tiny_epsilon_still_finite(self):
        # n grows doubly-logarithmically in 1/epsilon, so even epsilon = 1e-8
        # keeps the largest job representable in double precision.
        params = swrpt_lower_bound_parameters(1e-8)
        assert math.isfinite(params.largest_size)
        assert params.n >= 4
        assert params.k >= 20


class TestSWRPTLowerBoundInstance:
    def test_job_count(self):
        params = swrpt_lower_bound_parameters(0.4)
        instance = swrpt_lower_bound_instance(0.4, 10)
        assert instance.n_jobs == params.n + params.k + 10 + 1  # J0..Jn, k middle, l unit jobs

    def test_first_jobs_follow_construction(self):
        epsilon = 0.4
        params = swrpt_lower_bound_parameters(epsilon)
        instance = swrpt_lower_bound_instance(epsilon, 5)
        n = params.n
        j0, j1, j2 = instance.job(0), instance.job(1), instance.job(2)
        assert j0.release == 0.0
        assert j0.size == pytest.approx(2.0 ** (2.0 ** n))
        assert j1.release == pytest.approx(2.0 ** (2.0 ** n) - 2.0 ** (2.0 ** (n - 2)))
        assert j1.size == pytest.approx(2.0 ** (2.0 ** (n - 1)))
        assert j2.release == pytest.approx(j1.release + j1.size - params.alpha)
        assert j2.size == pytest.approx(2.0 ** (2.0 ** (n - 2)))

    def test_sizes_non_increasing_after_head(self):
        instance = swrpt_lower_bound_instance(0.4, 5)
        sizes = [j.size for j in instance.jobs]
        assert all(a >= b - 1e-12 for a, b in zip(sizes[:-1], sizes[1:]))
        assert sizes[-1] == 1.0

    def test_later_jobs_released_back_to_back(self):
        """From job 3 onward, each job is released when its predecessor's work ends."""
        instance = swrpt_lower_bound_instance(0.4, 4)
        jobs = list(instance.jobs)
        for prev, nxt in zip(jobs[2:-1], jobs[3:]):
            assert nxt.release == pytest.approx(prev.release + prev.size)

    def test_single_machine(self):
        instance = swrpt_lower_bound_instance(0.5, 3)
        assert instance.n_machines == 1

    def test_unit_job_count_validation(self):
        with pytest.raises(ModelError):
            swrpt_lower_bound_instance(0.5, 0)
