"""Cross-tier bit-equality of the heuristic-scheduler kernels.

Mirror of ``tests/test_replan_kernels.py`` for :mod:`repro.schedulers.kernels`:
every kernel in :data:`~repro.schedulers.kernels.KERNEL_NAMES` is checked
against the ``legacy`` tier (the pre-kernel pure python, kept verbatim) on
randomized inputs -- with deliberate exact ties and tolerance-band near-ties
injected so the fallback branches actually fire -- in every importable tier
(``numpy`` always, ``numba`` on the CI jit leg).  Equality is exact (``==``
on every element).  A second group checks the contract at the integration
level: whole-run completions of every heuristic scheduler are identical
under every tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.schedulers import kernels
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

#: Tiers equality-tested against the legacy reference.
CANDIDATE_TIERS = [t for t in kernels.available_tiers() if t != "legacy"]

#: Randomized trials per kernel and tier.
N_TRIALS = 25

#: The heuristic (LP-free) schedulers whose event loops call these kernels.
HEURISTIC_KEYS = (
    "fcfs",
    "srpt",
    "spt",
    "swpt",
    "swrpt",
    "mct",
    "mct-div",
    "bender02",
    "bender98",
)


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _case_mct_argmin_completion(rng):
    n = int(rng.integers(0, 25))
    available = rng.uniform(0.0, 30.0, size=n)
    cycle_times = rng.uniform(0.05, 4.0, size=n)
    if n > 2 and rng.random() < 0.7:
        # Duplicate (available, cycle_time) pairs produce exact completion
        # ties, and 1e-16 jitter produces tolerance-band near-ties: both
        # force the numpy tier off its unique-winner fast path onto the
        # sequential champion chain.
        take = rng.integers(0, n, size=n // 2)
        jitter = 1.0 + rng.uniform(-1e-16, 1e-16, size=take.size)
        available = np.concatenate([available, available[take]])
        cycle_times = np.concatenate([cycle_times, cycle_times[take] * jitter])
    now = float(rng.uniform(0.0, 30.0))
    size = float(rng.uniform(0.1, 10.0))
    return (available, cycle_times, now, size)


def _case_water_filling_completion(rng):
    n = int(rng.integers(1, 20))
    speeds = rng.uniform(0.2, 5.0, size=n)
    availability = rng.uniform(0.0, 20.0, size=n)
    if n > 2 and rng.random() < 0.6:
        # Duplicate availability dates: the earliest-availability order is
        # then tie-broken by position, which must match between the legacy
        # stable tuple sort and the compiled mergesort argsort.
        take = rng.integers(0, n, size=n // 2)
        speeds = np.concatenate([speeds, rng.uniform(0.2, 5.0, size=take.size)])
        availability = np.concatenate([availability, availability[take]])
    work = float(rng.uniform(0.01, 50.0))
    return (work, speeds, availability)


def _case_plan_horizon_scan(rng):
    n = int(rng.integers(0, 20))
    starts = np.empty(n, dtype=np.float64)
    ends = np.empty(n, dtype=np.float64)
    cursor = float(rng.uniform(0.0, 5.0))
    for i in range(n):
        # Mix exact back-to-back segments, sub-tolerance slivers and real
        # gaps, so the scan's continue/chain/break arms all fire.
        gap = float(rng.choice([0.0, 5e-13, 1e-9, 0.8]))
        starts[i] = cursor + gap
        ends[i] = starts[i] + float(rng.uniform(0.05, 3.0))
        cursor = ends[i]
    time = float(rng.uniform(0.0, 10.0))
    return (starts, ends, time)


def _case_rank_by_priority(rng):
    n = int(rng.integers(0, 40))
    priorities = rng.uniform(0.0, 10.0, size=n)
    if n > 2:
        # Duplicate priorities exercise the job-id tie-break; inf and the
        # 1e18-offset sentinels mimic EDF's "no deadline" keys.
        take = rng.integers(0, n, size=n // 2)
        priorities[take] = priorities[(take + 1) % n]
        priorities[rng.integers(0, n)] = np.inf
        priorities[rng.integers(0, n)] = 1e18 + float(rng.uniform(0.0, 30.0))
    job_ids = rng.permutation(n).astype(np.int64)
    return (priorities, job_ids)


def _case_pseudo_stretch_priorities(rng):
    n = int(rng.integers(0, 40))
    delta = float(rng.uniform(1.0, 50.0))
    ages = rng.uniform(0.0, 20.0, size=n)
    relative_sizes = rng.uniform(1.0, delta, size=n)
    if n > 0:
        # Pin some sizes exactly at sqrt(delta): the <= boundary of the
        # branch selection.
        boundary = rng.random(size=n) < 0.3
        relative_sizes[boundary] = np.sqrt(delta)
    return (ages, relative_sizes, delta)


def _case_expand_deadlines(rng):
    n = int(rng.integers(0, 40))
    releases = np.sort(rng.uniform(0.0, 30.0, size=n))
    flow_factors = rng.uniform(0.1, 10.0, size=n)
    scale = float(rng.uniform(0.5, 20.0))
    return (releases, flow_factors, scale)


_CASE_BUILDERS = {
    "mct_argmin_completion": _case_mct_argmin_completion,
    "water_filling_completion": _case_water_filling_completion,
    "plan_horizon_scan": _case_plan_horizon_scan,
    "rank_by_priority": _case_rank_by_priority,
    "pseudo_stretch_priorities": _case_pseudo_stretch_priorities,
    "expand_deadlines": _case_expand_deadlines,
}


def _assert_bit_equal(actual, expected):
    if isinstance(expected, tuple):
        assert isinstance(actual, tuple) and len(actual) == len(expected)
        for a, e in zip(actual, expected):
            _assert_bit_equal(a, e)
    elif isinstance(expected, np.ndarray):
        assert np.asarray(actual).shape == expected.shape
        assert np.array_equal(np.asarray(actual), expected)
    else:
        assert actual == expected


def test_every_kernel_has_a_case_builder():
    # A new kernel cannot land without its cross-tier equality coverage.
    assert set(_CASE_BUILDERS) == set(kernels.KERNEL_NAMES)


@pytest.mark.parametrize("tier", CANDIDATE_TIERS)
@pytest.mark.parametrize("name", kernels.KERNEL_NAMES)
def test_kernel_bit_equal_to_legacy(name, tier):
    reference = kernels.kernel(name, "legacy")
    candidate = kernels.kernel(name, tier)
    for trial in range(N_TRIALS):
        seed = 1000 * trial + kernels.KERNEL_NAMES.index(name)
        args = _CASE_BUILDERS[name](_rng(seed))
        _assert_bit_equal(candidate(*args), reference(*args))


class TestTierDispatch:
    def test_default_tier_matches_numba_availability(self):
        expected = "numba" if kernels.HAVE_NUMBA else "numpy"
        assert kernels._default_tier() == expected

    def test_set_active_tier_round_trips(self):
        initial = kernels.active_tier()
        previous = kernels.set_active_tier("legacy")
        try:
            assert previous == initial
            assert kernels.active_tier() == "legacy"
        finally:
            kernels.set_active_tier(initial)
        assert kernels.active_tier() == initial

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernels.set_active_tier("fortran")

    def test_numba_tier_listed_only_when_importable(self):
        assert ("numba" in kernels.available_tiers()) == kernels.HAVE_NUMBA

    def test_empty_machine_set_rejected(self):
        with pytest.raises(ValueError, match="at least one machine"):
            kernels.water_filling_completion(
                1.0, np.empty(0, dtype=np.float64), np.empty(0, dtype=np.float64)
            )


@pytest.mark.parametrize("tier", CANDIDATE_TIERS)
def test_whole_run_bit_identical_across_tiers(tier):
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=4, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=2.0, window=25.0, max_jobs=15)
    instance = generate_instance(platform_spec, workload_spec, rng=33)

    def run():
        completions = {}
        for key in HEURISTIC_KEYS:
            options = {"max_jobs_per_resolution": 8} if key == "bender98" else {}
            scheduler = make_scheduler(key, **options)
            completions[key] = simulate(instance, scheduler).completions
        return completions

    initial = kernels.set_active_tier("legacy")
    try:
        reference = run()
        kernels.set_active_tier(tier)
        candidate = run()
    finally:
        kernels.set_active_tier(initial)
    assert candidate == reference
