"""Cross-tier bit-equality of the compiled replan kernels (:mod:`repro.lp.kernels`).

Every kernel in :data:`~repro.lp.kernels.KERNEL_NAMES` is checked against
the ``legacy`` tier (the pre-kernel pure python, kept verbatim) on
randomized inputs, in every importable tier -- ``numpy`` always, ``numba``
on the CI jit leg.  Equality is exact (``==`` on every element), matching
the module's bit-identity contract.  A second group checks the contract at
the integration level: whole-run S* trajectories and completions are
identical under every tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp import kernels
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

#: Tiers equality-tested against the legacy reference.
CANDIDATE_TIERS = [t for t in kernels.available_tiers() if t != "legacy"]

#: Randomized trials per kernel and tier.
N_TRIALS = 25


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _case_merge_close_milestones(rng):
    n = int(rng.integers(1, 40))
    values = np.sort(rng.uniform(0.0, 50.0, size=n))
    # Inject near-duplicate clusters so the merge path actually fires.
    if n > 3 and rng.random() < 0.7:
        dup = values[rng.integers(0, n, size=max(1, n // 4))]
        jitter = dup * (1.0 + rng.uniform(-1e-13, 1e-13, size=dup.size))
        values = np.sort(np.concatenate([values, dup, jitter]))
    tol = float(rng.choice([1e-12, 1e-9, 1e-6]))
    return (values, tol)


def _case_order_affine_boundaries(rng):
    n = int(rng.integers(0, 30))
    consts = rng.uniform(0.0, 20.0, size=n)
    coefs = rng.uniform(0.0, 5.0, size=n)
    if n > 2:
        # Exact duplicate pairs and probe-value ties exercise the dedup and
        # the tie-breaking components of the sort key.
        take = rng.integers(0, n, size=n // 2)
        consts = np.concatenate([consts, consts[take]])
        coefs = np.concatenate([coefs, coefs[take]])
    probe = float(rng.uniform(0.5, 10.0))
    return (consts, coefs, probe)


def _case_active_jobs_delta(rng):
    n = int(rng.integers(1, 50))
    releases = np.sort(rng.uniform(0.0, 30.0, size=n))
    factors = rng.uniform(0.1, 4.0, size=n)
    rem = rng.uniform(0.0, 10.0, size=n)
    rem[rng.random(size=n) < 0.4] = 0.0  # completed jobs drop out
    now = float(rng.uniform(0.0, 30.0))
    has_now = bool(rng.random() < 0.8)
    return (releases, factors, rem, now, has_now)


def _case_scatter_capacity_sys1(rng):
    n_rows = int(rng.integers(1, 12))
    n_entries = int(rng.integers(0, 60))
    entry_rows = rng.integers(0, n_rows, size=n_entries).astype(np.int64)
    entry_cols = rng.integers(0, 80, size=n_entries).astype(np.int64)
    len_const = rng.uniform(0.0, 5.0, size=n_rows)
    len_coef = rng.uniform(0.0, 2.0, size=n_rows)
    len_coef[rng.random(size=n_rows) < 0.3] = 0.0  # fixed-length intervals
    speeds = rng.uniform(0.5, 8.0, size=n_rows)
    offset = int(rng.integers(0, 10))
    f_var = int(rng.integers(100, 200))
    return (entry_rows, entry_cols, len_const, len_coef, speeds, offset, f_var)


_CASE_BUILDERS = {
    "merge_close_milestones": _case_merge_close_milestones,
    "order_affine_boundaries": _case_order_affine_boundaries,
    "active_jobs_delta": _case_active_jobs_delta,
    "scatter_capacity_sys1": _case_scatter_capacity_sys1,
}


def _assert_bit_equal(actual, expected):
    if isinstance(expected, tuple):
        assert isinstance(actual, tuple) and len(actual) == len(expected)
        for a, e in zip(actual, expected):
            _assert_bit_equal(a, e)
    elif isinstance(expected, np.ndarray):
        assert np.asarray(actual).shape == expected.shape
        assert np.array_equal(np.asarray(actual), expected)
    else:
        assert actual == expected


def test_every_kernel_has_a_case_builder():
    # A new kernel cannot land without its cross-tier equality coverage.
    assert set(_CASE_BUILDERS) == set(kernels.KERNEL_NAMES)


@pytest.mark.parametrize("tier", CANDIDATE_TIERS)
@pytest.mark.parametrize("name", kernels.KERNEL_NAMES)
def test_kernel_bit_equal_to_legacy(name, tier):
    reference = kernels.kernel(name, "legacy")
    candidate = kernels.kernel(name, tier)
    for trial in range(N_TRIALS):
        seed = 1000 * trial + kernels.KERNEL_NAMES.index(name)
        args = _CASE_BUILDERS[name](_rng(seed))
        _assert_bit_equal(candidate(*args), reference(*args))


class TestTierDispatch:
    def test_default_tier_matches_numba_availability(self):
        expected = "numba" if kernels.HAVE_NUMBA else "numpy"
        assert kernels._default_tier() == expected

    def test_set_active_tier_round_trips(self):
        initial = kernels.active_tier()
        previous = kernels.set_active_tier("legacy")
        try:
            assert previous == initial
            assert kernels.active_tier() == "legacy"
        finally:
            kernels.set_active_tier(initial)
        assert kernels.active_tier() == initial

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            kernels.set_active_tier("fortran")

    def test_numba_tier_listed_only_when_importable(self):
        assert ("numba" in kernels.available_tiers()) == kernels.HAVE_NUMBA


@pytest.mark.parametrize("tier", CANDIDATE_TIERS)
def test_whole_run_bit_identical_across_tiers(tier):
    platform_spec = PlatformSpec(
        n_clusters=2, processors_per_cluster=4, n_databanks=2, availability=0.6
    )
    workload_spec = WorkloadSpec(density=2.0, window=25.0, max_jobs=12)
    instance = generate_instance(platform_spec, workload_spec, rng=21)

    def run():
        scheduler = make_scheduler("online")
        result = simulate(instance, scheduler)
        return scheduler.last_objective, result.completions

    initial = kernels.set_active_tier("legacy")
    try:
        reference = run()
        kernels.set_active_tier(tier)
        candidate = run()
    finally:
        kernels.set_active_tier(initial)
    assert candidate[0] == reference[0]
    assert candidate[1] == reference[1]
