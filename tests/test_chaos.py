"""Chaos tests: worker crashes and the fault axis under the campaign engine.

Two robustness contracts of :mod:`repro.experiments.runner`:

* SIGKILLing a pool worker mid-campaign breaks that lane's process pool;
  the runner rebuilds the pool, re-dispatches the stranded units, and the
  final record set (and checkpoint journal) is exactly the one a serial
  run produces -- every triple exactly once;
* the fault axis (seeded availability timelines regenerated in-worker) is
  bit-identical at any worker count, with the solver-state bank and
  speculation on or off, including the NaN-metrics ``failed`` records of
  fault-unaware schedulers.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import signal

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.io import CampaignCheckpoint
from repro.experiments.runner import campaign_tasks, run_campaign

FAULT_CONFIG = ExperimentConfig(
    name="chaos", n_clusters=2, n_databanks=2, availability=0.6,
    density=1.0, processors_per_cluster=2, window=12.0, max_jobs=6,
    fault_mtbf=5.0, fault_mttr=1.0,
)
KEYS = ("online", "swrpt", "offline")
REPLICATES = 2
SEED = 23


@pytest.fixture(scope="module")
def fault_serial():
    return run_campaign(
        [FAULT_CONFIG], scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED
    )


class TestFaultAxisCampaigns:
    def test_fault_unaware_scheduler_fails_cleanly(self, fault_serial):
        """Offline under faults: failed NaN records, campaign survives."""
        by_key = {}
        for record in fault_serial:
            by_key.setdefault(record.scheduler, []).append(record)
        for record in by_key["Offline"]:
            assert record.failed and math.isnan(record.max_stretch)
        for name in ("Online", "SWRPT"):
            assert all(not r.failed for r in by_key[name])

    def test_fault_axis_differs_from_fault_free(self, fault_serial):
        import dataclasses

        plain_config = dataclasses.replace(
            FAULT_CONFIG, fault_mtbf=None, fault_mttr=None
        )
        plain = run_campaign(
            [plain_config], scheduler_keys=("online",), replicates=REPLICATES,
            base_seed=SEED,
        )
        faulty = [r for r in fault_serial if r.scheduler == "Online"]
        assert [r.max_stretch for r in plain] != [r.max_stretch for r in faulty]

    @pytest.mark.parametrize("n_workers", [2, 4])
    @pytest.mark.parametrize(
        "bank,speculation", [(True, False), (False, False), (True, True)]
    )
    def test_bit_identical_across_workers_bank_speculation(
        self, fault_serial, n_workers, bank, speculation
    ):
        import dataclasses

        config = dataclasses.replace(
            FAULT_CONFIG, state_bank=bank, speculation=speculation
        )
        serial = run_campaign(
            [config], scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED
        )
        pooled = run_campaign(
            [config], scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            n_workers=n_workers,
        )
        assert pooled.result_set() == serial.result_set()
        # The knobs never change the objective values, only how they are
        # computed -- so every variant also matches the fixture run.
        assert pooled.result_set() == fault_serial.result_set()


class TestEmptyTimelineIdentity:
    """Acceptance gate: the fault machinery is invisible when unused."""

    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    @pytest.mark.parametrize(
        "bank,speculation", [(True, False), (False, False), (True, True)]
    )
    def test_fault_free_campaign_identical_at_any_worker_count(
        self, n_workers, bank, speculation
    ):
        import dataclasses

        config = dataclasses.replace(
            FAULT_CONFIG, fault_mtbf=None, fault_mttr=None,
            state_bank=bank, speculation=speculation,
        )
        assert config.fault_spec() is None
        serial = run_campaign(
            [config], scheduler_keys=("online", "swrpt"), replicates=REPLICATES,
            base_seed=SEED,
        )
        pooled = run_campaign(
            [config], scheduler_keys=("online", "swrpt"), replicates=REPLICATES,
            base_seed=SEED, n_workers=n_workers,
        )
        assert pooled.result_set() == serial.result_set()
        assert all(not r.failed for r in pooled)


class TestWorkerCrashRecovery:
    def test_sigkill_mid_campaign_recovers_bit_identically(
        self, fault_serial, tmp_path
    ):
        """Satellite 2: SIGKILL a pool worker; the campaign still delivers
        every record exactly once, and a subsequent --resume has nothing
        left to do."""
        journal = tmp_path / "chaos.jsonl"
        killed = []

        def kill_one_worker(progress) -> None:
            if killed:
                return
            # The pool workers are this process's multiprocessing children;
            # SIGKILL one of them mid-flight to break its lane's pool.
            for child in multiprocessing.active_children():
                if child.pid is not None:
                    os.kill(child.pid, signal.SIGKILL)
                    killed.append(child.pid)
                    return

        results = run_campaign(
            [FAULT_CONFIG], scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED, n_workers=2, checkpoint=journal,
            progress=kill_one_worker,
        )
        assert killed, "no pool worker was alive to kill"
        assert results.result_set() == fault_serial.result_set()
        # Exactly-once journal coverage despite the re-dispatch.
        done = CampaignCheckpoint(journal).load()
        expected = {
            t.triple for t in campaign_tasks([FAULT_CONFIG], KEYS, REPLICATES, SEED)
        }
        assert set(done) == expected
        assert len(done) == len(expected)

        # A resume of the completed journal recomputes nothing.
        events = []
        resumed = run_campaign(
            [FAULT_CONFIG], scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED, checkpoint=journal, resume=True,
            progress=events.append,
        )
        assert events == []
        assert resumed.result_set() == fault_serial.result_set()
