"""Solver robustness: retry policies, backend downgrade, failed records.

The defence-in-depth contract of :mod:`repro.lp.resilience`:

1. inside one backend, retriable solver statuses walk a bounded method
   escalation chain (the historical scipy status-1 retry, generalized);
2. across backends, a probe whose persistent primary raises is re-solved
   once on the stateless scipy fallback (highs -> scipy downgrade);
3. a :class:`SolverError` that survives both layers carries enough context
   (backend, method, attempts, probe signature) to diagnose the probe
   post-mortem, and aborts only its own campaign run -- the runner converts
   it into a NaN-metrics ``failed`` record.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core.errors import ModelError, SolverError
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_campaign
from repro.lp.backends import make_backend
from repro.lp.backends.base import LPResult, LPSpec, SolverBackend
from repro.lp.backends.scipy_backend import ScipyBackend
from repro.lp.resilience import (
    DEFAULT_RETRY_POLICY,
    ResilientBackend,
    RetryPolicy,
    annotate_solver_error,
    make_resilient,
    solve_with_retries,
)


class FakeStatus:
    def __init__(self, status: int):
        self.status = status
        self.message = f"status {status}"


def scripted_run(statuses_by_method):
    """A ``run(method)`` callable with a scripted status per method."""
    calls: list[str] = []

    def run(method: str) -> FakeStatus:
        calls.append(method)
        return FakeStatus(statuses_by_method[method])

    return run, calls


class TestRetryPolicy:
    def test_default_reproduces_historical_scipy_behavior(self):
        assert DEFAULT_RETRY_POLICY.escalation == ("highs-ipm",)
        assert DEFAULT_RETRY_POLICY.retriable_statuses == (1,)
        assert DEFAULT_RETRY_POLICY.max_attempts == 2
        assert DEFAULT_RETRY_POLICY.backoff_seconds == 0.0

    def test_validation(self):
        with pytest.raises(ModelError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ModelError, match="backoff_seconds"):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ModelError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)


class TestSolveWithRetries:
    def test_success_on_first_attempt(self):
        run, calls = scripted_run({"highs": 0})
        result, attempts, used = solve_with_retries(run, "highs")
        assert (result.status, attempts, used) == (0, 1, "highs")
        assert calls == ["highs"]

    def test_retriable_status_escalates_once(self):
        run, calls = scripted_run({"highs": 1, "highs-ipm": 0})
        result, attempts, used = solve_with_retries(run, "highs")
        assert (result.status, attempts, used) == (0, 2, "highs-ipm")
        assert calls == ["highs", "highs-ipm"]

    def test_candidate_equal_to_requested_method_is_skipped(self):
        # Retrying the identical configuration would only reproduce the
        # failure: the chain has nothing new to offer and stops at 1 attempt.
        run, calls = scripted_run({"highs-ipm": 1})
        result, attempts, used = solve_with_retries(run, "highs-ipm")
        assert (result.status, attempts, used) == (1, 1, "highs-ipm")
        assert calls == ["highs-ipm"]

    def test_max_attempts_bounds_the_chain(self):
        policy = RetryPolicy(
            escalation=("a", "b", "c"), retriable_statuses=(1,), max_attempts=2
        )
        run, calls = scripted_run({"start": 1, "a": 1, "b": 1, "c": 1})
        result, attempts, used = solve_with_retries(run, "start", policy=policy)
        assert (result.status, attempts, used) == (1, 2, "a")
        assert calls == ["start", "a"]

    def test_terminal_status_stops_the_chain(self):
        # Status 2 (infeasible) is not retriable: the certified answer of the
        # first escalation step is returned as-is.
        policy = RetryPolicy(
            escalation=("a", "b"), retriable_statuses=(1,), max_attempts=3
        )
        run, calls = scripted_run({"start": 1, "a": 2, "b": 0})
        result, attempts, used = solve_with_retries(run, "start", policy=policy)
        assert (result.status, attempts, used) == (2, 2, "a")

    def test_geometric_backoff_uses_injected_sleep(self):
        policy = RetryPolicy(
            escalation=("a", "b", "c"),
            retriable_statuses=(1,),
            max_attempts=4,
            backoff_seconds=0.1,
            backoff_factor=3.0,
        )
        slept: list[float] = []
        run, _ = scripted_run({"start": 1, "a": 1, "b": 1, "c": 1})
        solve_with_retries(run, "start", policy=policy, sleep=slept.append)
        assert slept == pytest.approx([0.1, 0.3, 0.9])


class TestSolverErrorContext:
    def test_annotate_fills_only_unset_fields(self):
        exc = SolverError("boom", method="highs")
        annotate_solver_error(exc, backend="highs", method="clobbered", status=None)
        assert exc.backend == "highs"
        assert exc.method == "highs"  # already set: preserved
        assert exc.status is None  # None values never annotate

    def test_context_and_str_carry_the_probe_identity(self):
        exc = SolverError(
            "LP solver failed", backend="scipy", method="highs-ipm",
            status=4, attempts=2, probe_signature=("sig", 1, 2),
        )
        context = exc.context()
        assert context["backend"] == "scipy"
        assert context["attempts"] == 2
        text = str(exc)
        assert "backend=scipy" in text and "attempts=2" in text

    def test_pickle_round_trip_preserves_context(self):
        # SolverError crosses process-pool boundaries in campaign mode.
        exc = SolverError("boom", backend="highs", status=4, attempts=3)
        clone = pickle.loads(pickle.dumps(exc))
        assert str(clone) == str(exc)
        assert clone.context() == exc.context()


def trivial_spec(infeasible: bool = False) -> LPSpec:
    """min 2x with 1 <= x <= 10; optionally x <= 0.5 to make it infeasible."""
    has_row = bool(infeasible)
    return LPSpec(
        n_vars=1,
        objective=[2.0],
        lower=[1.0],
        upper=[10.0],
        ub_rows=[0] if has_row else [],
        ub_cols=[0] if has_row else [],
        ub_vals=[1.0] if has_row else [],
        ub_rhs=[0.5] if has_row else [],
        eq_rows=[],
        eq_cols=[],
        eq_vals=[],
        eq_rhs=[],
    )


class FailingBackend(SolverBackend):
    name = "failing"
    persistent = True

    def __init__(self):
        self.closed = False
        self.imported: list[object] = []

    def _solve(self, spec, *, method="auto", key=None, warm=None):
        raise SolverError("persistent model corrupted")

    def close(self):
        self.closed = True

    def export_series_state(self):
        return {"series": "state"}

    def import_series_state(self, payload):
        self.imported.append(payload)


class TestScipyBackendRetry:
    def test_solves_and_respects_custom_policy(self):
        backend = ScipyBackend(RetryPolicy(retriable_statuses=()))
        result = backend.solve(trivial_spec())
        assert result.status == 0 and result.feasible
        assert result.objective == pytest.approx(2.0)

    def test_infeasible_is_a_certified_answer_not_a_failure(self):
        result = ScipyBackend().solve(trivial_spec(infeasible=True))
        assert result.status == 2 and not result.feasible
        assert math.isinf(result.objective)


class TestResilientBackend:
    def test_downgrades_to_fallback_and_counts(self):
        backend = ResilientBackend(FailingBackend())
        assert backend.name == "failing"  # telemetry/bank keying unchanged
        assert backend.persistent is True
        result = backend.solve(trivial_spec())
        assert result.status == 0
        assert result.objective == pytest.approx(2.0)
        assert backend.n_downgrades == 1

    def test_both_layers_failing_chains_the_errors(self):
        primary = FailingBackend()
        backend = ResilientBackend(primary, fallback=FailingBackend())
        with pytest.raises(SolverError, match="corrupted") as info:
            backend.solve(trivial_spec())
        assert isinstance(info.value.__cause__, SolverError)
        assert info.value.backend == "failing"

    def test_series_state_and_close_delegate_to_primary(self):
        primary = FailingBackend()
        backend = ResilientBackend(primary)
        assert backend.export_series_state() == {"series": "state"}
        backend.import_series_state({"x": 1})
        assert primary.imported == [{"x": 1}]
        backend.close()
        assert primary.closed

    def test_make_resilient_wraps_only_persistent_backends(self):
        scipy_backend = make_backend("scipy")
        assert make_resilient(scipy_backend) is scipy_backend  # already the floor
        wrapped = make_resilient(FailingBackend())
        assert isinstance(wrapped, ResilientBackend)
        assert make_resilient(wrapped) is wrapped  # never double-wrapped


class TestPoisonedProbeRegression:
    def test_poisoned_probe_becomes_failed_record_not_a_crash(self, monkeypatch):
        """A terminal SolverError fails one run, never the campaign."""

        def poisoned_solve(self, spec, *, method="auto", key=None, warm=None):
            raise SolverError(
                "poisoned probe", backend=self.name, status=4, attempts=2
            )

        monkeypatch.setattr(SolverBackend, "solve", poisoned_solve)
        config = ExperimentConfig(
            name="poison", n_clusters=2, n_databanks=2, availability=0.6,
            density=1.0, processors_per_cluster=2, window=10.0, max_jobs=5,
        )
        results = run_campaign(
            [config], scheduler_keys=("online", "swrpt"), replicates=2, base_seed=11
        )
        by_scheduler: dict[str, list] = {}
        for record in results:
            by_scheduler.setdefault(record.scheduler, []).append(record)
        assert set(by_scheduler) == {"Online", "SWRPT"}
        for record in by_scheduler["Online"]:
            assert record.failed
            assert math.isnan(record.max_stretch)
            assert math.isnan(record.sum_stretch)
        for record in by_scheduler["SWRPT"]:
            assert not record.failed
            assert math.isfinite(record.max_stretch)
