"""Tests for the distribution subsystem: shard plans, journal merging, report.

The contract under test is the split-compute/merge invariant: N shard legs
run with ``--shard i/N`` and their merged journals must reproduce the serial
campaign *bit-identically* (order-independent, timing measurements aside),
with the merge layer enforcing exactly-once triple coverage -- duplicates
with identical results are benign and counted, conflicting results are hard
errors, and gaps are reported with the shard that owns them.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.errors import ReproError
from repro.experiments.config import ExperimentConfig
from repro.experiments.io import load_records_json
from repro.experiments.merge import (
    design_tasks_from_meta,
    generate_campaign_report,
    merge_journals,
    write_merged_journal,
)
from repro.experiments.runner import campaign_meta, campaign_tasks, run_campaign
from repro.experiments.sharding import ShardPlan, parse_shard_spec
from repro.experiments.tables import table1

CONFIGS = [
    ExperimentConfig(
        name="shard-a", n_clusters=2, n_databanks=2, availability=0.6,
        density=1.0, processors_per_cluster=3, window=15.0, max_jobs=6,
    ),
    ExperimentConfig(
        name="shard-b", n_clusters=2, n_databanks=2, availability=0.9,
        density=1.5, processors_per_cluster=3, window=15.0, max_jobs=6,
    ),
]
KEYS = ("swrpt", "srpt", "mct")
REPLICATES = 3
SEED = 23
N_SHARDS = 3


@pytest.fixture(scope="module")
def serial_results():
    return run_campaign(
        CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED
    )


@pytest.fixture(scope="module")
def shard_journals(tmp_path_factory, serial_results):
    """Journals of the three shard legs (run once, reused by many tests)."""
    root = tmp_path_factory.mktemp("shards")
    paths = []
    for i in range(1, N_SHARDS + 1):
        path = root / f"shard-{i}.jsonl"
        run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            shard=f"{i}/{N_SHARDS}", checkpoint=path,
        )
        paths.append(path)
    return paths


class TestShardSpec:
    def test_parse_valid_specs(self):
        assert parse_shard_spec("1/1") == (1, 1)
        assert parse_shard_spec("2/5") == (2, 5)
        assert parse_shard_spec(" 3 / 6 ") == (3, 6)

    @pytest.mark.parametrize(
        "spec", ["", "3", "0/3", "4/3", "-1/2", "2/0", "a/b", "1/2/3", "1.5/3"]
    )
    def test_parse_rejects_malformed_specs(self, spec):
        with pytest.raises(ReproError, match="shard spec"):
            parse_shard_spec(spec)

    def test_plan_parse_coercions(self):
        plan = ShardPlan(2, 5)
        assert ShardPlan.parse(plan) is plan
        assert ShardPlan.parse("2/5") == plan
        assert ShardPlan.parse((2, 5)) == plan
        assert plan.spec == "2/5"

    def test_plan_rejects_bad_indices(self):
        with pytest.raises(ReproError):
            ShardPlan(0, 3)
        with pytest.raises(ReproError):
            ShardPlan(4, 3)

    def test_meta_entry_round_trip(self):
        plan = ShardPlan(3, 7)
        assert ShardPlan.from_meta_entry(plan.meta_entry()) == plan
        with pytest.raises(ReproError, match="malformed shard entry"):
            ShardPlan.from_meta_entry({"index": 1})
        with pytest.raises(ReproError, match="malformed shard entry"):
            ShardPlan.from_meta_entry("1/7")


class TestShardPlanPartition:
    def _tasks(self):
        return campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)

    def test_slices_partition_the_task_list(self):
        tasks = self._tasks()
        slices = [plan.select(tasks) for plan in ShardPlan(1, N_SHARDS).siblings()]
        seen = [task.triple for part in slices for task in part]
        assert sorted(seen) == sorted(task.triple for task in tasks)
        assert len(seen) == len(set(seen))  # disjoint

    def test_slices_preserve_canonical_order(self):
        tasks = self._tasks()
        for plan in ShardPlan(1, N_SHARDS).siblings():
            selected = plan.select(tasks)
            positions = [tasks.index(task) for task in selected]
            assert positions == sorted(positions)

    def test_whole_instances_stay_on_one_shard(self):
        # Splitting a (config, replicate) group would realize the same
        # instance in several jobs; every group must land on exactly one.
        tasks = self._tasks()
        for plan in ShardPlan(1, N_SHARDS).siblings():
            for task in plan.select(tasks):
                group = [
                    t for t in tasks
                    if (t.config.name, t.replicate) == (task.config.name, task.replicate)
                ]
                assert all(t in plan.select(tasks) for t in group)

    def test_round_robin_balances_group_counts(self):
        tasks = self._tasks()
        sizes = [
            len({(t.config.name, t.replicate) for t in plan.select(tasks)})
            for plan in ShardPlan(1, N_SHARDS).siblings()
        ]
        assert max(sizes) - min(sizes) <= 1

    def test_plan_is_deterministic_across_processes(self):
        # The CI matrix computes each leg's slice in a separate process (a
        # separate machine, in reality); the assignment may depend on the
        # design only -- never on hashing, environment or timing.
        tasks = self._tasks()
        local = [sorted(p.selects_triple(tasks)) for p in ShardPlan(1, N_SHARDS).siblings()]
        script = (
            "import json, sys\n"
            "from tests.test_sharding_merge import CONFIGS, KEYS, REPLICATES, SEED, N_SHARDS\n"
            "from repro.experiments.runner import campaign_tasks\n"
            "from repro.experiments.sharding import ShardPlan\n"
            "tasks = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)\n"
            "slices = [sorted(p.selects_triple(tasks))"
            " for p in ShardPlan(1, N_SHARDS).siblings()]\n"
            "json.dump(slices, sys.stdout)\n"
        )
        env = dict(os.environ)
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(root, "src"), root, env.get("PYTHONPATH", "")]
        )
        env["PYTHONHASHSEED"] = "random"  # a hash-dependent plan must still agree
        output = subprocess.run(
            [sys.executable, "-c", script], env=env, cwd=root,
            capture_output=True, text=True, check=True,
        ).stdout
        remote = [[tuple(t) for t in part] for part in json.loads(output)]
        assert remote == local

    def test_single_shard_is_identity(self):
        tasks = self._tasks()
        assert ShardPlan(1, 1).select(tasks) == list(tasks)

    def test_more_shards_than_groups_leaves_some_empty(self):
        tasks = self._tasks()
        n_groups = len({(t.config.name, t.replicate) for t in tasks})
        plans = ShardPlan(1, n_groups + 2).siblings()
        slices = [plan.select(tasks) for plan in plans]
        assert sum(len(s) for s in slices) == len(tasks)
        assert [] in slices


class TestShardedCampaignMerge:
    def test_merge_is_bit_identical_to_serial(self, serial_results, shard_journals):
        report = merge_journals(shard_journals)
        assert report.complete
        assert report.n_duplicates == 0
        assert len(report.legs) == N_SHARDS
        assert report.results.result_set() == serial_results.result_set()

    def test_merge_report_accounting(self, shard_journals):
        report = merge_journals(shard_journals)
        total = len(CONFIGS) * REPLICATES * len(KEYS)
        assert report.n_expected == total == len(report.results)
        assert [leg.shard.spec for leg in report.legs] == [
            f"{i}/{N_SHARDS}" for i in range(1, N_SHARDS + 1)
        ]
        rendered = report.render()
        assert "coverage: complete" in rendered
        assert f"{total} records expected" in rendered

    def test_merged_journal_round_trips(self, serial_results, shard_journals, tmp_path):
        merged_path = tmp_path / "merged.jsonl"
        write_merged_journal(merge_journals(shard_journals), merged_path)
        again = merge_journals([merged_path])
        assert again.complete
        assert again.legs[0].shard is None  # the merge strips the shard identity
        assert again.results.result_set() == serial_results.result_set()

    def test_merged_journal_resumes_as_nothing_to_do(
        self, serial_results, shard_journals, tmp_path
    ):
        # A resume pointed at the merged journal restores every triple:
        # the merged file is indistinguishable from a serial run's journal.
        merged_path = tmp_path / "merged.jsonl"
        write_merged_journal(merge_journals(shard_journals), merged_path)
        events = []
        resumed = run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            checkpoint=merged_path, resume=True, progress=events.append,
        )
        assert events == []  # nothing recomputed
        assert resumed.result_set() == serial_results.result_set()

    def test_write_merged_journal_never_overwrites(self, shard_journals, tmp_path):
        target = tmp_path / "existing.jsonl"
        target.write_text("precious data\n")
        with pytest.raises(ReproError, match="refusing to overwrite"):
            write_merged_journal(merge_journals(shard_journals), target)
        assert target.read_text() == "precious data\n"

    def test_shard_journal_resume_is_slice_scoped(self, shard_journals, tmp_path):
        # Resuming shard 1's journal under shard 2's plan must be rejected:
        # the header records the shard identity as part of the campaign.
        with pytest.raises(ReproError, match="different campaign"):
            run_campaign(
                CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES,
                base_seed=SEED, shard=f"2/{N_SHARDS}",
                checkpoint=shard_journals[0], resume=True,
            )

    def test_serial_journal_merges_alone(self, serial_results, tmp_path):
        path = tmp_path / "serial.jsonl"
        run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            checkpoint=path,
        )
        report = merge_journals([path])
        assert report.complete
        assert report.results.result_set() == serial_results.result_set()


def _rewrite_line(path, out_path, match_text, transform):
    """Copy a journal, transforming the (single) line containing match_text."""
    lines = path.read_text().splitlines()
    hits = [i for i, line in enumerate(lines) if match_text in line]
    assert hits, f"no line matches {match_text!r}"
    lines[hits[0]] = transform(lines[hits[0]])
    out_path.write_text("\n".join(lines) + "\n")
    return out_path


class TestMergeValidation:
    def test_no_journals_is_an_error(self):
        with pytest.raises(ReproError, match="at least one"):
            merge_journals([])

    def test_missing_journal_is_an_error(self, tmp_path):
        with pytest.raises(ReproError, match="missing or empty"):
            merge_journals([tmp_path / "nope.jsonl"])

    def test_non_checkpoint_file_is_an_error(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"some": "other file"}\n')
        with pytest.raises(ReproError, match="not a campaign checkpoint"):
            merge_journals([path])

    def test_foreign_campaign_is_rejected(self, shard_journals, tmp_path):
        foreign = tmp_path / "foreign.jsonl"
        run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES,
            base_seed=SEED + 1, shard=f"2/{N_SHARDS}", checkpoint=foreign,
        )
        with pytest.raises(ReproError, match="differs from"):
            merge_journals([shard_journals[0], foreign])

    def test_mismatched_shard_counts_are_rejected(self, shard_journals, tmp_path):
        other = tmp_path / "other-partition.jsonl"
        run_campaign(
            CONFIGS, scheduler_keys=KEYS, replicates=REPLICATES, base_seed=SEED,
            shard=f"1/{N_SHARDS + 1}", checkpoint=other,
        )
        with pytest.raises(ReproError, match="partition"):
            merge_journals([shard_journals[0], other])

    def test_identical_duplicate_is_benign_and_counted(
        self, serial_results, shard_journals, tmp_path
    ):
        # Re-journal one record verbatim (an overlapping re-run of a leg).
        duplicated = tmp_path / "dup.jsonl"
        lines = shard_journals[0].read_text().splitlines()
        duplicated.write_text("\n".join(lines + [lines[1]]) + "\n")
        report = merge_journals([duplicated, *shard_journals[1:]])
        assert report.complete
        assert report.n_duplicates == 1
        assert report.results.result_set() == serial_results.result_set()

    def test_conflicting_duplicate_is_a_hard_error(self, shard_journals, tmp_path):
        # Same triple, different record: corrupt by perturbing one metric.
        corrupt = tmp_path / "corrupt.jsonl"
        lines = shard_journals[0].read_text().splitlines()
        entry = json.loads(lines[1])
        entry["record"]["max_stretch"] = (entry["record"]["max_stretch"] or 0) + 1.0
        corrupt.write_text("\n".join(lines + [json.dumps(entry)]) + "\n")
        with pytest.raises(ReproError, match="merge conflict"):
            merge_journals([corrupt, *shard_journals[1:]])

    def test_out_of_slice_record_is_rejected(self, shard_journals, tmp_path):
        # Relabel shard 1's journal as shard 2's: its records are no longer
        # in the claimed slice, i.e. the plan that produced it mismatches.
        relabeled = _rewrite_line(
            shard_journals[0],
            tmp_path / "relabeled.jsonl",
            '"kind"',
            lambda line: line.replace(
                '"shard": {"index": 1', '"shard": {"index": 2'
            ),
        )
        with pytest.raises(ReproError, match="does not own"):
            merge_journals([relabeled])

    def test_gap_report_names_the_owning_shard(self, shard_journals):
        report = merge_journals([shard_journals[0], shard_journals[2]])
        assert not report.complete
        missing_triples = ShardPlan(2, N_SHARDS).selects_triple(
            campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        )
        assert set(report.missing) == missing_triples
        assert report.missing_by_shard == {f"2/{N_SHARDS}": len(missing_triples)}
        rendered = report.render()
        assert "INCOMPLETE" in rendered
        assert f"--shard 2/{N_SHARDS} --resume" in rendered

    def test_summary_dict_shape(self, shard_journals):
        summary = merge_journals(shard_journals).summary()
        assert summary["complete"] is True
        assert summary["n_journals"] == N_SHARDS
        assert summary["shards"] == [f"{i}/{N_SHARDS}" for i in range(1, N_SHARDS + 1)]
        json.dumps(summary)  # machine-readable means JSON-serializable

    def test_design_tasks_from_meta_matches_campaign_tasks(self):
        meta = campaign_meta(CONFIGS, KEYS, REPLICATES, SEED)
        rebuilt = design_tasks_from_meta(meta)
        original = campaign_tasks(CONFIGS, KEYS, REPLICATES, SEED)
        assert [t.triple for t in rebuilt] == [t.triple for t in original]
        assert [t.seed for t in rebuilt] == [t.seed for t in original]

    def test_malformed_meta_is_rejected(self):
        with pytest.raises(ReproError, match="design"):
            design_tasks_from_meta({"base_seed": 1})


class TestReportStage:
    def test_report_regenerates_table1_from_merged_run(
        self, serial_results, shard_journals, tmp_path
    ):
        # The acceptance bar: Table 1 regenerated from the sharded+merged
        # journals renders identically to the table of the serial run.
        report = merge_journals(shard_journals)
        summary = generate_campaign_report(
            report.results, tmp_path / "out",
            meta=report.meta, coverage=report.summary(),
        )
        written = (tmp_path / "out" / "TABLE_01.txt").read_text()
        assert written == table1(serial_results).render() + "\n"
        assert summary["coverage"]["complete"] is True
        assert summary["n_records"] == len(serial_results)

    def test_report_artifacts_and_summary_shape(self, shard_journals, tmp_path):
        report = merge_journals(shard_journals)
        summary = generate_campaign_report(
            report.results, tmp_path / "out",
            meta=report.meta, coverage=report.summary(),
        )
        out = tmp_path / "out"
        for name in (
            "TABLE_01.txt", "TABLES_02_16.txt", "records.json",
            "CAMPAIGN_summary.json",
        ):
            assert (out / name).exists(), name
        on_disk = json.loads((out / "CAMPAIGN_summary.json").read_text())
        assert on_disk == json.loads(json.dumps(summary))
        assert on_disk["design"]["n_configs"] == len(CONFIGS)
        assert {row["scheduler"] for row in on_disk["table1"]} == {
            "SWRPT", "SRPT", "MCT"
        }
        assert set(on_disk["breakdowns"]) == {
            "sites", "density", "databases", "availability",
        }
        loaded = load_records_json(out / "records.json")
        assert loaded.result_set() == report.results.result_set()

    def test_report_without_meta_or_coverage(self, serial_results, tmp_path):
        summary = generate_campaign_report(serial_results, tmp_path / "out")
        assert summary["design"] is None
        assert summary["coverage"] is None
        assert (tmp_path / "out" / "TABLE_01.txt").exists()
