"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.command == "simulate"
        assert args.clusters == 3
        assert "offline" in args.schedulers

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--schedulers", "definitely-not-a-scheduler"])

    def test_campaign_arguments(self):
        args = build_parser().parse_args(
            ["campaign", "--replicates", "2", "--sites", "3", "--densities", "1.0", "2.0"]
        )
        assert args.replicates == 2
        assert args.sites == [3]
        assert args.densities == [1.0, 2.0]

    def test_solver_backend_flag(self):
        for sub in ("simulate", "campaign", "overhead"):
            # 'auto' is the default since the campaign-scale A/B gate passed;
            # 'scipy' stays available as the bit-stable escape hatch.
            args = build_parser().parse_args([sub])
            assert args.solver_backend == "auto"
            args = build_parser().parse_args([sub, "--solver-backend", "scipy"])
            assert args.solver_backend == "scipy"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--solver-backend", "cplex"])

    def test_state_bank_flag(self):
        # The cross-run solver-state bank is on by default; 'off' is the
        # escape hatch that re-pays every cold solve.
        assert build_parser().parse_args(["campaign"]).state_bank == "on"
        args = build_parser().parse_args(["campaign", "--state-bank", "off"])
        assert args.state_bank == "off"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--state-bank", "maybe"])

    def test_campaign_engine_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--checkpoint", "ck.jsonl", "--resume", "--workers", "4"]
        )
        assert args.checkpoint == "ck.jsonl"
        assert args.resume
        assert args.workers == 4
        args = build_parser().parse_args(["campaign", "--ab-backends"])
        assert args.ab_backends
        assert args.ab_tolerance == 1e-6
        assert args.ab_tie_tolerance == 0.10

    def test_campaign_max_jobs_cap(self):
        # 0 is the documented "uncapped" spelling; negatives are typos and
        # must not silently become the paper-scale uncapped workload.
        assert build_parser().parse_args(["campaign", "--max-jobs", "0"]).max_jobs == 0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--max-jobs", "-1"])

    def test_campaign_shard_flag(self):
        args = build_parser().parse_args(["campaign", "--shard", "2/5"])
        assert args.shard == "2/5"
        for bad in ("0/3", "4/3", "x/y", "3"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["campaign", "--shard", bad])

    def test_merge_and_report_arguments(self):
        args = build_parser().parse_args(
            ["merge", "a.jsonl", "b.jsonl", "--output", "m.jsonl", "--allow-gaps"]
        )
        assert args.journals == ["a.jsonl", "b.jsonl"]
        assert args.output == "m.jsonl"
        assert args.allow_gaps
        args = build_parser().parse_args(["report", "m.jsonl", "--output-dir", "d"])
        assert args.journal == "m.jsonl"
        assert args.output_dir == "d"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge"])  # at least one journal


class TestCommands:
    def test_simulate_runs(self, capsys):
        code = main(
            [
                "simulate",
                "--clusters", "2",
                "--databanks", "2",
                "--processors", "3",
                "--window", "15",
                "--max-jobs", "6",
                "--schedulers", "swrpt", "mct",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "SWRPT" in out and "MCT" in out
        assert "max-stretch" in out

    def test_simulate_with_highs_backend(self, capsys):
        from repro.lp.backends import highs_available

        if not highs_available():
            pytest.skip("HiGHS bindings unavailable")
        code = main(
            [
                "simulate",
                "--clusters", "2",
                "--databanks", "2",
                "--processors", "3",
                "--window", "12",
                "--max-jobs", "5",
                "--schedulers", "online", "offline",
                "--solver-backend", "highs",
                "--seed", "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Online" in out and "Offline" in out

    def test_highs_backend_unavailable_is_reported(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "available_backends", lambda: ("scipy",))
        code = main(["simulate", "--max-jobs", "3", "--solver-backend", "highs"])
        err = capsys.readouterr().err
        assert code == 2
        assert "highspy" in err

    def test_highs_unavailable_error_carries_the_probed_reason(
        self, capsys, monkeypatch
    ):
        # When the availability probe can tell *why* the bindings are out
        # (highspy missing vs scipy too old vs incompatible APIs), the
        # error must surface that diagnosis, not just the install hint.
        import repro.cli as cli_mod

        monkeypatch.setattr(cli_mod, "available_backends", lambda: ("scipy",))
        monkeypatch.setattr(
            cli_mod,
            "highs_unavailable_reason",
            lambda: "highspy is not installed, and scipy 1.10 does not vendor "
            "the HiGHS bindings (needs scipy >= 1.15)",
        )
        code = main(["simulate", "--max-jobs", "3", "--solver-backend", "highs"])
        err = capsys.readouterr().err
        assert code == 2
        assert "highspy is not installed" in err
        assert "scipy 1.10 does not vendor" in err
        assert "--solver-backend auto" in err

    def test_simulate_with_trace_and_gantt(self, capsys):
        code = main(
            [
                "simulate",
                "--clusters", "1",
                "--databanks", "1",
                "--processors", "2",
                "--window", "10",
                "--max-jobs", "3",
                "--schedulers", "srpt",
                "--trace",
                "--gantt",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "arrival" in out
        assert "Gantt" in out

    def test_campaign_runs_tiny(self, capsys, tmp_path):
        csv_path = tmp_path / "records.csv"
        code = main(
            [
                "campaign",
                "--replicates", "1",
                "--sites", "2",
                "--databanks", "2",
                "--availabilities", "0.6",
                "--densities", "1.0",
                "--window", "12",
                "--max-jobs", "5",
                "--schedulers", "swrpt", "srpt", "mct",
                "--save-csv", str(csv_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert csv_path.exists()

    def test_campaign_checkpoint_resume(self, capsys, tmp_path):
        ck = tmp_path / "ck.jsonl"
        args = [
            "campaign",
            "--replicates", "1",
            "--sites", "2",
            "--databanks", "2",
            "--availabilities", "0.6",
            "--densities", "1.0",
            "--window", "12",
            "--max-jobs", "5",
            "--schedulers", "swrpt", "mct",
            "--checkpoint", str(ck),
        ]
        assert main(args) == 0
        assert ck.exists()
        # Rerunning without --resume refuses to touch the existing journal
        # (clean operator error, not a traceback).
        assert main(args) == 2
        assert "--resume" in capsys.readouterr().err
        # With --resume everything is restored; Table 1 is still printed.
        assert main(args + ["--resume"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_campaign_resume_requires_checkpoint(self, capsys):
        code = main(["campaign", "--resume", "--max-jobs", "3"])
        assert code == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_campaign_resume_of_complete_journal_is_nothing_to_do(
        self, capsys, tmp_path
    ):
        ck = tmp_path / "ck.jsonl"
        args = [
            "campaign",
            "--replicates", "1",
            "--sites", "2",
            "--databanks", "2",
            "--availabilities", "0.6",
            "--densities", "1.0",
            "--window", "12",
            "--max-jobs", "5",
            "--schedulers", "swrpt", "mct",
            "--checkpoint", str(ck),
        ]
        assert main(args) == 0
        before = ck.read_text()
        capsys.readouterr()
        # The journal is complete: the resume exits 0, says so, and leaves
        # the file byte-identical (nothing re-validated, nothing re-run).
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert "nothing to do" in captured.out
        assert "  [" not in captured.err  # no per-task progress lines
        assert ck.read_text() == before

    def test_campaign_shard_merge_report_flow(self, capsys, tmp_path):
        # The acceptance flow at test scale: three shard legs -> merge with
        # exactly-once validation -> report regenerating Table 1.
        base = [
            "campaign",
            # Three replicates of one configuration: exactly one instance
            # group per shard, so dropping a leg leaves a genuine gap.
            "--replicates", "3",
            "--sites", "2",
            "--databanks", "2",
            "--availabilities", "0.6",
            "--densities", "1.0",
            "--window", "12",
            "--max-jobs", "5",
            "--schedulers", "swrpt", "mct",
        ]
        journals = []
        for i in (1, 2, 3):
            path = tmp_path / f"shard-{i}.jsonl"
            code = main(base + ["--shard", f"{i}/3", "--checkpoint", str(path)])
            out = capsys.readouterr().out
            assert code == 0
            assert f"shard {i}/3:" in out
            assert "Table 1" not in out  # partial records never get tables
            journals.append(str(path))

        merged = tmp_path / "merged.jsonl"
        code = main(["merge", *journals, "--output", str(merged)])
        out = capsys.readouterr().out
        assert code == 0
        assert "coverage: complete" in out
        assert merged.exists()

        code = main(
            ["report", str(merged), "--output-dir", str(tmp_path / "report")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert (tmp_path / "report" / "CAMPAIGN_summary.json").exists()

        # A merge missing one leg exits 1 (gap) unless gaps are allowed...
        assert main(["merge", *journals[:2]]) == 1
        err = capsys.readouterr().err
        assert "incomplete" in err
        assert main(["merge", *journals[:2], "--allow-gaps"]) == 0
        capsys.readouterr()
        # ...and 'report' refuses a partial journal outright.
        assert main(["report", journals[0]]) == 1
        assert "full design" in capsys.readouterr().err

    def test_campaign_shard_rejects_table_sinks(self, capsys):
        code = main(["campaign", "--shard", "1/2", "--breakdowns", "--max-jobs", "3"])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err
        code = main(["campaign", "--shard", "1/2", "--ab-backends", "--max-jobs", "3"])
        assert code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_merge_of_missing_journal_is_clean_error(self, capsys, tmp_path):
        code = main(["merge", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_campaign_ab_backends_rejects_record_sinks(self, capsys):
        code = main(
            ["campaign", "--ab-backends", "--checkpoint", "x.jsonl", "--max-jobs", "3"]
        )
        assert code == 2
        assert "incompatible" in capsys.readouterr().err

    def test_campaign_ab_backends(self, capsys):
        code = main(
            [
                "campaign",
                "--ab-backends",
                "--replicates", "1",
                "--sites", "2",
                "--databanks", "2",
                "--availabilities", "0.6",
                "--densities", "1.0",
                "--window", "12",
                "--max-jobs", "5",
                "--schedulers", "online", "swrpt",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Backend A/B" in out
        assert "VERDICT: equivalent" in out

    def test_theorem1_command(self, capsys):
        code = main(["theorem1", "--delta", "4", "--unit-jobs", "12",
                     "--schedulers", "srpt", "fcfs"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Theorem 1" in out
        assert "srpt" in out

    def test_theorem2_command(self, capsys):
        code = main(["theorem2", "--epsilon", "0.5", "--unit-jobs", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "ratio" in out

    def test_overhead_command(self, capsys):
        code = main(["overhead", "--replicates", "1", "--window", "10", "--max-jobs", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Scheduler" in out

    def test_figure3_command(self, capsys, monkeypatch):
        # Shrink the density grid through the config helper to keep it fast.
        import repro.cli as cli_mod

        original = cli_mod.figure3_configurations

        def small_grid(**kwargs):
            kwargs["densities"] = (0.5, 1.5)
            kwargs.setdefault("n_clusters", 2)
            kwargs.setdefault("n_databanks", 2)
            return original(**kwargs)

        monkeypatch.setattr(cli_mod, "figure3_configurations", small_grid)
        code = main(["figure3", "--replicates", "1", "--window", "10", "--max-jobs", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "density" in out
