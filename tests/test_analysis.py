"""Tests for :mod:`repro.analysis` (post-simulation analysis helpers)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    backlog_timeline,
    compare_results,
    jain_fairness_index,
    per_databank_stretch,
    stretch_distribution,
)
from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate


@pytest.fixture
def instance() -> Instance:
    platform = Platform(
        [
            Machine(0, 1.0, 0, frozenset({"a"})),
            Machine(1, 0.5, 1, frozenset({"a", "b"})),
        ]
    )
    jobs = [
        Job(0, release=0.0, size=9.0, databank="a"),
        Job(1, release=1.0, size=2.0, databank="b"),
        Job(2, release=2.0, size=1.0, databank="b"),
        Job(3, release=3.0, size=4.0, databank="a"),
    ]
    return Instance(jobs, platform)


class TestJainFairness:
    def test_equal_values_give_one(self):
        assert jain_fairness_index([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_single_dominant_value_gives_one_over_n(self):
        values = [1000.0, 1e-9, 1e-9, 1e-9]
        assert jain_fairness_index(values) == pytest.approx(0.25, rel=1e-3)

    def test_accepts_mapping(self):
        assert jain_fairness_index({0: 1.0, 1: 1.0}) == pytest.approx(1.0)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ModelError):
            jain_fairness_index([])
        with pytest.raises(ModelError):
            jain_fairness_index([1.0, 0.0])

    def test_bounds(self):
        values = [1.0, 2.0, 5.0, 9.0]
        index = jain_fairness_index(values)
        assert 1.0 / len(values) <= index <= 1.0


class TestStretchDistribution:
    def test_summary_consistency(self, instance):
        result = simulate(instance, make_scheduler("swrpt"))
        dist = stretch_distribution(instance, result.completions)
        assert dist.n_jobs == instance.n_jobs
        assert dist.minimum >= 1.0 - 1e-9
        assert dist.minimum <= dist.median <= dist.p90 <= dist.p95 <= dist.maximum
        assert dist.minimum <= dist.mean <= dist.maximum
        assert 0.0 < dist.fairness <= 1.0
        assert dist.maximum == pytest.approx(result.max_stretch)

    def test_as_dict_keys(self, instance):
        result = simulate(instance, make_scheduler("srpt"))
        data = stretch_distribution(instance, result.completions).as_dict()
        assert {"mean", "median", "p95", "max", "fairness"} <= set(data)

    def test_fairer_scheduler_has_higher_fairness_on_starvation_instance(self):
        from repro.workload.adversarial import starvation_instance

        instance = starvation_instance(4.0, 48)
        srpt = simulate(instance, make_scheduler("srpt"))
        fcfs = simulate(instance, make_scheduler("fcfs"))
        srpt_dist = stretch_distribution(instance, srpt.completions)
        fcfs_dist = stretch_distribution(instance, fcfs.completions)
        # SRPT starves the large job: one job's stretch dwarfs the others and
        # its max is far above FCFS's; FCFS spreads the pain more evenly in
        # the max sense (every unit job is slowed the same way).
        assert srpt_dist.maximum > fcfs_dist.maximum


class TestBacklogTimeline:
    def test_backlog_starts_and_ends_near_zero(self, instance):
        result = simulate(instance, make_scheduler("swrpt"))
        timeline = backlog_timeline(result, resolution=50)
        assert len(timeline) == 50
        times = [t for t, _ in timeline]
        assert times == sorted(times)
        # At the end of the schedule everything is processed.
        assert timeline[-1][1] == pytest.approx(0.0, abs=1e-6)
        # All backlog values are non-negative and bounded by the total work.
        total = sum(j.size for j in instance.jobs)
        for _, backlog in timeline:
            assert -1e-9 <= backlog <= total + 1e-9

    def test_backlog_peaks_after_burst(self):
        platform = Platform.single_machine(1.0, databanks=["db"])
        jobs = [Job(i, release=0.0, size=5.0, databank="db") for i in range(3)]
        result = simulate(Instance(jobs, platform), make_scheduler("fcfs"))
        timeline = backlog_timeline(result, resolution=30)
        backlogs = [b for _, b in timeline]
        assert max(backlogs) == pytest.approx(15.0, rel=0.1)

    def test_resolution_validated(self, instance):
        result = simulate(instance, make_scheduler("srpt"))
        with pytest.raises(ModelError):
            backlog_timeline(result, resolution=1)


class TestPerDatabankAndComparison:
    def test_per_databank_breakdown(self, instance):
        result = simulate(instance, make_scheduler("swrpt"))
        breakdown = per_databank_stretch(instance, result.completions)
        assert set(breakdown) == {"a", "b"}
        assert breakdown["a"].n_jobs == 2
        assert breakdown["b"].n_jobs == 2
        overall_max = result.max_stretch
        assert max(d.maximum for d in breakdown.values()) == pytest.approx(overall_max)

    def test_compare_results_table(self, instance):
        results = [
            simulate(instance, make_scheduler(key)) for key in ("mct", "swrpt", "online")
        ]
        table = compare_results(results)
        text = table.render()
        assert "MCT" in text and "SWRPT" in text and "Online" in text
        assert "fairness" in text

    def test_compare_results_rejects_mixed_instances(self, instance):
        other = Instance(
            [Job(0, release=0.0, size=1.0, databank="a")], instance.platform
        )
        results = [
            simulate(instance, make_scheduler("swrpt")),
            simulate(other, make_scheduler("swrpt")),
        ]
        with pytest.raises(ModelError):
            compare_results(results)

    def test_compare_results_requires_results(self):
        with pytest.raises(ModelError):
            compare_results([])
