"""Unit tests for :mod:`repro.core.platform`."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.platform import CapabilityClass, Cluster, Machine, Platform


class TestMachine:
    def test_basic_properties(self):
        machine = Machine(0, cycle_time=0.5, cluster_id=2, databanks=frozenset({"a"}))
        assert machine.speed == pytest.approx(2.0)
        assert machine.hosts("a")
        assert not machine.hosts("b")
        assert machine.hosts(None)
        assert machine.label == "M0"

    def test_named_label(self):
        assert Machine(1, 1.0, name="fast").label == "fast"

    def test_invalid_cycle_time(self):
        with pytest.raises(ModelError):
            Machine(0, cycle_time=0.0)
        with pytest.raises(ModelError):
            Machine(0, cycle_time=-1.0)

    def test_negative_id_rejected(self):
        with pytest.raises(ModelError):
            Machine(-3, cycle_time=1.0)

    def test_databanks_coerced_to_frozenset(self):
        machine = Machine(0, 1.0, databanks={"a", "b"})  # type: ignore[arg-type]
        assert isinstance(machine.databanks, frozenset)


class TestCluster:
    def test_homogeneity_enforced(self):
        ok = Cluster(
            0, (Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 0, frozenset({"a"})))
        )
        assert ok.aggregate_speed == pytest.approx(2.0)
        assert ok.databanks == frozenset({"a"})
        with pytest.raises(ModelError):
            Cluster(0, (Machine(0, 1.0, 0), Machine(1, 2.0, 0)))
        with pytest.raises(ModelError):
            Cluster(0, (Machine(0, 1.0, 0, frozenset({"a"})), Machine(1, 1.0, 0, frozenset({"b"}))))

    def test_cluster_id_consistency(self):
        with pytest.raises(ModelError):
            Cluster(0, (Machine(0, 1.0, 1),))

    def test_empty_cluster_rejected(self):
        with pytest.raises(ModelError):
            Cluster(0, ())


class TestPlatformConstruction:
    def test_single_machine(self):
        platform = Platform.single_machine(2.0, databanks=["x"])
        assert len(platform) == 1
        assert platform[0].cycle_time == 2.0
        assert platform.databanks() == frozenset({"x"})

    def test_uniform(self):
        platform = Platform.uniform([1.0, 2.0, 4.0], databanks=["db"])
        assert len(platform) == 3
        assert platform.aggregate_speed() == pytest.approx(1.0 + 0.5 + 0.25)

    def test_from_clusters(self):
        platform = Platform.from_clusters([(2, 1.0, ["a"]), (3, 0.5, ["a", "b"])])
        assert len(platform) == 5
        assert len(platform.clusters()) == 2
        assert platform.machines_hosting("b") == tuple(platform)[2:]

    def test_from_clusters_rejects_empty_cluster(self):
        with pytest.raises(ModelError):
            Platform.from_clusters([(0, 1.0, ["a"])])

    def test_empty_platform_rejected(self):
        with pytest.raises(ModelError):
            Platform([])

    def test_duplicate_machine_ids_rejected(self):
        with pytest.raises(ModelError):
            Platform([Machine(0, 1.0), Machine(0, 2.0)])


class TestPlatformQueries:
    @pytest.fixture
    def platform(self) -> Platform:
        return Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 0, frozenset({"a"})),
                Machine(2, 0.5, 1, frozenset({"a", "b"})),
                Machine(3, 2.0, 2, frozenset({"b"})),
            ]
        )

    def test_by_id(self, platform):
        assert platform.by_id(2).cycle_time == 0.5
        with pytest.raises(KeyError):
            platform.by_id(99)

    def test_machines_hosting(self, platform):
        assert [m.machine_id for m in platform.machines_hosting("a")] == [0, 1, 2]
        assert [m.machine_id for m in platform.machines_hosting("b")] == [2, 3]
        assert len(platform.machines_hosting(None)) == 4

    def test_aggregate_speed_restricted(self, platform):
        assert platform.aggregate_speed("a") == pytest.approx(1 + 1 + 2)
        assert platform.aggregate_speed("b") == pytest.approx(2 + 0.5)
        assert platform.aggregate_speed() == pytest.approx(4.5)

    def test_is_uniform_for(self, platform):
        assert not platform.is_uniform_for(["a"])
        assert platform.is_uniform_for([None])
        uniform = Platform.uniform([1.0, 2.0], databanks=["a", "b"])
        assert uniform.is_uniform_for(["a", "b", None])

    def test_capability_classes(self, platform):
        classes = platform.capability_classes()
        assert len(classes) == 3
        by_banks = {cls.databanks: cls for cls in classes}
        assert by_banks[frozenset({"a"})].machine_ids == (0, 1)
        assert by_banks[frozenset({"a"})].aggregate_speed == pytest.approx(2.0)
        assert by_banks[frozenset({"a", "b"})].aggregate_speed == pytest.approx(2.0)
        assert by_banks[frozenset({"b"})].machine_ids == (3,)

    def test_capability_class_cycle_time_and_hosts(self, platform):
        cls = platform.capability_classes()[0]
        assert cls.cycle_time == pytest.approx(1.0 / cls.aggregate_speed)
        assert cls.hosts(None)

    def test_clusters_grouping(self, platform):
        clusters = platform.clusters()
        assert [len(c) for c in clusters] == [2, 1, 1]
        assert clusters[0].cluster_id == 0

    def test_restrict_to(self, platform):
        sub = platform.restrict_to([0, 3])
        assert len(sub) == 2
        assert set(sub.ids()) == {0, 3}

    def test_describe_mentions_clusters(self, platform):
        text = platform.describe()
        assert "4 machines" in text
        assert "cluster 0" in text

    def test_slicing_returns_platform(self, platform):
        assert isinstance(platform[:2], Platform)
        assert len(platform[:2]) == 2

    def test_equality_and_hash(self, platform):
        clone = Platform(list(platform))
        assert clone == platform
        assert hash(clone) == hash(platform)


class TestCapabilityClassValidation:
    def test_invalid_speed(self):
        with pytest.raises(ModelError):
            CapabilityClass(frozenset(), (0,), aggregate_speed=0.0)

    def test_empty_members(self):
        with pytest.raises(ModelError):
            CapabilityClass(frozenset(), (), aggregate_speed=1.0)
