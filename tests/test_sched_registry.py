"""Tests for the scheduler registry and plan-based base class."""

from __future__ import annotations

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.schedulers.base import PlanBasedScheduler, PlanSegment
from repro.schedulers.registry import (
    PAPER_TABLE1_ORDER,
    available_schedulers,
    make_scheduler,
    paper_schedulers,
    register_scheduler,
)
from repro.simulation.state import SchedulerState


class TestRegistry:
    def test_all_paper_schedulers_registered(self):
        available = set(available_schedulers())
        for key in PAPER_TABLE1_ORDER:
            assert key in available

    def test_make_scheduler_returns_fresh_instances(self):
        a = make_scheduler("srpt")
        b = make_scheduler("srpt")
        assert a is not b

    def test_unknown_key_raises(self):
        with pytest.raises(KeyError):
            make_scheduler("does-not-exist")

    def test_kwargs_forwarded(self):
        scheduler = make_scheduler("bender98", max_jobs_per_resolution=5)
        assert scheduler.max_jobs_per_resolution == 5

    def test_paper_schedulers_with_and_without_bender98(self):
        with_bender = paper_schedulers()
        without = paper_schedulers(include_bender98=False)
        assert "bender98" in with_bender
        assert "bender98" not in without
        assert len(with_bender) == len(without) + 1

    def test_register_custom_scheduler_decorator(self):
        from repro.schedulers.priority import FCFSScheduler

        key = "custom-test-scheduler"
        if key not in available_schedulers():
            @register_scheduler(key)
            def _factory():
                return FCFSScheduler()

        assert key in available_schedulers()
        assert isinstance(make_scheduler(key), FCFSScheduler)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_scheduler("srpt", lambda: None)  # type: ignore[arg-type]

    def test_scheduler_display_names(self):
        expected = {
            "offline": "Offline",
            "online": "Online",
            "online-edf": "Online-EDF",
            "online-egdf": "Online-EGDF",
            "online-nonopt": "Online (non-opt.)",
            "bender98": "Bender98",
            "bender02": "Bender02",
            "swrpt": "SWRPT",
            "srpt": "SRPT",
            "spt": "SPT",
            "mct": "MCT",
            "mct-div": "MCT-Div",
        }
        for key, name in expected.items():
            assert make_scheduler(key).name == name


class TestPlanBasedScheduler:
    @pytest.fixture
    def instance(self) -> Instance:
        platform = Platform.uniform([1.0, 1.0], databanks=["db"])
        jobs = [Job(0, release=0.0, size=2.0, databank="db"),
                Job(1, release=0.0, size=2.0, databank="db")]
        return Instance(jobs, platform)

    class DummyPlanScheduler(PlanBasedScheduler):
        name = "dummy-plan"

    def test_plan_manipulation(self, instance):
        scheduler = self.DummyPlanScheduler()
        scheduler.reset(instance)
        scheduler.set_plan(
            [
                PlanSegment(machine_id=0, job_id=0, start=0.0, end=2.0),
                PlanSegment(machine_id=1, job_id=1, start=1.0, end=3.0),
            ]
        )
        assert len(scheduler.plan_segments()) == 2
        assert len(scheduler.plan_segments(0)) == 1
        assert scheduler.plan_horizon(0, 0.0) == pytest.approx(2.0)
        assert scheduler.plan_horizon(1, 0.0) == pytest.approx(0.0)  # gap before 1.0
        assert scheduler.plan_horizon(1, 1.5) == pytest.approx(3.0)

    def test_clear_plan_from_truncates(self, instance):
        scheduler = self.DummyPlanScheduler()
        scheduler.reset(instance)
        scheduler.set_plan([PlanSegment(machine_id=0, job_id=0, start=0.0, end=4.0)])
        scheduler.clear_plan_from(1.5)
        segments = scheduler.plan_segments(0)
        assert len(segments) == 1
        assert segments[0].end == pytest.approx(1.5)
        scheduler.clear_plan_from(0.0)
        assert scheduler.plan_segments(0) == []

    def test_assign_follows_plan(self, instance):
        scheduler = self.DummyPlanScheduler()
        scheduler.reset(instance)
        scheduler.set_plan(
            [
                PlanSegment(machine_id=0, job_id=0, start=0.0, end=1.0),
                PlanSegment(machine_id=0, job_id=1, start=1.0, end=2.0),
                PlanSegment(machine_id=1, job_id=1, start=0.5, end=2.0),
            ]
        )
        state = SchedulerState(instance)
        state.release(instance.job(0))
        state.release(instance.job(1))
        state.time = 0.0
        assignment = scheduler.assign(state)
        assert assignment.mapping == {0: 0}
        assert assignment.valid_until == pytest.approx(0.5)
        state.time = 1.2
        assignment = scheduler.assign(state)
        assert assignment.mapping == {0: 1, 1: 1}

    def test_assign_skips_completed_jobs(self, instance):
        scheduler = self.DummyPlanScheduler()
        scheduler.reset(instance)
        scheduler.set_plan([PlanSegment(machine_id=0, job_id=0, start=0.0, end=1.0)])
        state = SchedulerState(instance)
        state.release(instance.job(0))
        state.active[0].remaining = 0.0
        state.complete(0, time=0.5)
        state.time = 0.5
        assignment = scheduler.assign(state)
        assert assignment.mapping == {}

    def test_segment_validation(self):
        with pytest.raises(ValueError):
            PlanSegment(machine_id=0, job_id=0, start=1.0, end=1.0)
