"""Speculative replan pre-solves (:mod:`repro.lp.speculate`): determinism.

The speculation contract is *bit-identity by construction*: a hit re-binds
the exact optimum of the content-identical LP the live replan would solve,
a miss is discarded untouched.  These tests enforce the contract end to end
-- identical S* trajectories and completions across seeds, backends, replan
policies and scheduler variants, a forced-misprediction case, memo
mechanics on the :class:`~repro.lp.incremental.ReplanContext`, and campaign
``result_set()`` bit-identity at 1/2/4 workers.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_campaign
from repro.lp import speculate
from repro.lp.backends import make_backend, record_lp_probes
from repro.lp.bank import problem_signature
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.relaxation import reoptimize_allocation
from repro.schedulers.registry import make_scheduler
from repro.simulation import engine
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance


def _dense_instance(seed: int, max_jobs: int = 14):
    """A small dense workload with enough arrivals to exercise speculation."""
    platform_spec = PlatformSpec(
        n_clusters=2, processors_per_cluster=4, n_databanks=2, availability=0.6
    )
    workload_spec = WorkloadSpec(density=2.0, window=30.0, max_jobs=max_jobs)
    return generate_instance(platform_spec, workload_spec, rng=seed)


def _run(instance, *, speculate_on, variant="online", backend=None, policy="on-arrival"):
    """One simulation; returns (result, per-replan S* trajectory, probe stats)."""
    objectives = []
    original = ReplanContext.solve_max_stretch

    def recording(self, problem):
        solution = original(self, problem)
        objectives.append(solution.objective)
        return solution

    ReplanContext.solve_max_stretch = recording
    try:
        scheduler = make_scheduler(
            variant, speculate=speculate_on, solver_backend=backend, policy=policy
        )
        with record_lp_probes() as stats:
            result = simulate(instance, scheduler)
    finally:
        ReplanContext.solve_max_stretch = original
    return result, objectives, stats


def test_completion_tolerance_mirrors_engine():
    # The event-horizon projection replicates the engine's completion drop;
    # the duplicated constant must never drift.
    assert speculate._COMPLETION_TOL == engine._COMPLETION_TOL


class TestBitIdentity:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("variant", ["online", "online-nonopt"])
    def test_trajectories_and_completions(self, seed, variant):
        instance = _dense_instance(seed)
        off = _run(instance, speculate_on=False, variant=variant)
        on = _run(instance, speculate_on=True, variant=variant)
        assert on[1] == off[1]  # exact S* trajectory, replan by replan
        assert on[0].completions == off[0].completions
        # Under the on-arrival default every replan after the first is
        # predicted exactly (the idle-gap projection is engine-exact).
        assert on[2].n_spec_misses == 0
        if len(on[1]) > 1:
            assert on[2].n_spec_hits > 0
        assert off[2].n_spec_hits == off[2].n_spec_misses == 0

    @pytest.mark.parametrize("variant", ["online-edf", "online-egdf"])
    def test_other_variants(self, variant):
        instance = _dense_instance(7)
        off = _run(instance, speculate_on=False, variant=variant)
        on = _run(instance, speculate_on=True, variant=variant)
        assert on[1] == off[1]
        assert on[0].completions == off[0].completions

    def test_auto_backend(self):
        # With the persistent backend speculation is a declared no-op (a
        # mispredicted solve would leave deltas in the live models); with
        # the scipy fallback it behaves as usual.  Either way: bit-identical.
        instance = _dense_instance(5)
        off = _run(instance, speculate_on=False, backend="auto")
        on = _run(instance, speculate_on=True, backend="auto")
        assert on[1] == off[1]
        assert on[0].completions == off[0].completions
        if make_backend("auto").persistent:
            assert on[2].n_spec_hits == on[2].n_spec_misses == 0

    @pytest.mark.parametrize("policy", ["batched:2.5", "threshold", "threshold:1.5"])
    def test_deferring_policies(self, policy):
        # Deferred replans fire at times/active-sets the projection did not
        # predict: speculation records misses, discards them, and results
        # stay bit-identical.
        instance = _dense_instance(9)
        off = _run(instance, speculate_on=False, policy=policy)
        on = _run(instance, speculate_on=True, policy=policy)
        assert on[1] == off[1]
        assert on[0].completions == off[0].completions


class TestMemoMechanics:
    def _context_and_problems(self):
        instance = _dense_instance(13)
        context = ReplanContext(instance)
        releases = sorted({job.release for job in instance.jobs})
        now = releases[2]
        active = [j for j in instance.jobs if j.release <= now]
        remaining = {j.job_id: j.size for j in active}
        problem = context.build_problem(now, remaining)
        return instance, context, now, remaining, problem

    def test_hit_rebinds_exact_optimum(self):
        instance, context, now, remaining, problem = self._context_and_problems()
        with record_lp_probes() as stats:
            context.speculate(problem)
            assert context._spec is not None
            live = context.build_problem(now, dict(remaining))
            solution = context.solve_max_stretch(live)
        assert stats.n_spec_hits == 1 and stats.n_spec_misses == 0
        assert context._spec is None  # slot consumed
        fresh = minimize_max_weighted_flow(context.build_problem(now, remaining))
        assert solution.objective == fresh.objective
        assert solution.allocations == fresh.allocations
        # The staged System (2) is consumed by the following reoptimize and
        # matches the from-scratch re-optimization exactly.
        sys2 = context.reoptimize(live, solution.objective)
        reference = reoptimize_allocation(
            context.build_problem(now, remaining), fresh.objective
        )
        assert sys2.allocations == reference.allocations
        assert context._spec_sys2 is None
        context.close()

    def test_forced_misprediction_is_discarded(self):
        instance, context, now, remaining, problem = self._context_and_problems()
        # Speculate on a *wrong* prediction: perturb one job's remaining work.
        wrong = dict(remaining)
        first = next(iter(wrong))
        wrong[first] *= 0.5
        with record_lp_probes() as stats:
            context.speculate(context.build_problem(now, wrong))
            live = context.build_problem(now, remaining)
            solution = context.solve_max_stretch(live)
        assert stats.n_spec_misses == 1 and stats.n_spec_hits == 0
        assert context._spec is None  # slot emptied on miss too
        assert context._spec_sys2 is None  # the wrong System (2) never leaks
        fresh = minimize_max_weighted_flow(context.build_problem(now, remaining))
        assert solution.objective == fresh.objective
        assert solution.allocations == fresh.allocations
        context.close()

    def test_persistent_backend_refuses_to_speculate(self):
        backend = make_backend("auto")
        if not backend.persistent:
            pytest.skip("no persistent backend available")
        instance = _dense_instance(13)
        context = ReplanContext(instance, solver_backend=backend)
        active = [j for j in instance.jobs if j.release <= 5.0]
        remaining = {j.job_id: j.size for j in active}
        context.speculate(context.build_problem(5.0, remaining))
        assert context._spec is None
        context.close()

    def test_duplicate_and_reused_signatures_skip_the_solve(self):
        instance, context, now, remaining, problem = self._context_and_problems()
        context.speculate(problem)
        memo = context._spec
        assert memo is not None and memo[0] == problem_signature(problem)
        # Same signature again: the existing memo is kept, nothing re-solves.
        before = context.n_probes_solved
        context.speculate(context.build_problem(now, dict(remaining)))
        assert context._spec is memo
        assert context.n_probes_solved == before
        # After the live replan consumed it, a speculation for the problem
        # just solved is pointless (the context reuses its last solution).
        live = context.build_problem(now, dict(remaining))
        context.solve_max_stretch(live)
        context.speculate(context.build_problem(now, dict(remaining)))
        assert context._spec is None
        context.close()


class TestCampaignBitIdentity:
    def test_result_sets_identical_at_1_2_4_workers(self):
        config = ExperimentConfig(
            name="spec-check",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=1.5,
            processors_per_cluster=3,
            window=20.0,
            max_jobs=8,
            solver_backend="scipy",
        )
        reference = None
        for speculation in (False, True):
            for n_workers in (1, 2, 4):
                results = run_campaign(
                    [replace(config, speculation=speculation)],
                    scheduler_keys=("online",),
                    replicates=2,
                    base_seed=17,
                    n_workers=n_workers,
                )
                record_set = results.result_set()
                if reference is None:
                    reference = record_set
                assert record_set == reference, (
                    f"speculation={speculation} n_workers={n_workers} diverged"
                )
