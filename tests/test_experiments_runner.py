"""Tests for the experiment runner, statistics, tables, figures, overhead and IO."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import ExperimentConfig, figure3_configurations
from repro.experiments.figures import figure3a, figure3b, run_figure3_sweep
from repro.experiments.io import load_records_csv, save_records_csv, save_records_json
from repro.experiments.overhead import scheduling_overhead
from repro.experiments.runner import ExperimentResults, RunRecord, run_campaign, run_configuration
from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import (
    table1,
    tables_by_availability,
    tables_by_databases,
    tables_by_density,
    tables_by_sites,
)

FAST_SCHEDULERS = ("swrpt", "srpt", "mct")


@pytest.fixture(scope="module")
def tiny_campaign() -> ExperimentResults:
    """A very small campaign shared by several tests (module-scoped for speed)."""
    configs = [
        ExperimentConfig(
            name="tiny-a",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=0.75,
            processors_per_cluster=3,
            window=30.0,
            max_jobs=10,
        ),
        ExperimentConfig(
            name="tiny-b",
            n_clusters=3,
            n_databanks=3,
            availability=0.9,
            density=1.5,
            processors_per_cluster=3,
            window=30.0,
            max_jobs=10,
        ),
    ]
    return run_campaign(configs, scheduler_keys=FAST_SCHEDULERS, replicates=2, base_seed=99)


class TestRunner:
    def test_record_count(self, tiny_campaign):
        # 2 configs x 2 replicates x 3 schedulers.
        assert len(tiny_campaign) == 12

    def test_records_have_metrics(self, tiny_campaign):
        for record in tiny_campaign:
            assert record.n_jobs > 0
            assert record.max_stretch >= 1.0 - 1e-9
            assert record.sum_stretch >= record.max_stretch - 1e-9
            assert not record.failed

    def test_filtering(self, tiny_campaign):
        assert len(tiny_campaign.by_sites(2)) == 6
        assert len(tiny_campaign.by_density(1.5)) == 6
        assert len(tiny_campaign.by_databases(3)) == 6
        assert len(tiny_campaign.by_availability(0.9)) == 6
        assert tiny_campaign.schedulers() == ["SWRPT", "SRPT", "MCT"]
        assert len(tiny_campaign.instances()) == 4

    def test_reproducibility(self):
        config = ExperimentConfig(
            name="repro-check",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=1.0,
            processors_per_cluster=2,
            window=20.0,
            max_jobs=8,
        )
        a = run_configuration(config, scheduler_keys=("swrpt",), replicates=2, base_seed=5)
        b = run_configuration(config, scheduler_keys=("swrpt",), replicates=2, base_seed=5)
        for ra, rb in zip(a, b):
            assert ra.max_stretch == pytest.approx(rb.max_stretch)
            assert ra.n_jobs == rb.n_jobs

    def test_parallel_matches_serial(self):
        config = ExperimentConfig(
            name="parallel-check",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=1.0,
            processors_per_cluster=2,
            window=20.0,
            max_jobs=8,
        )
        serial = run_campaign([config], scheduler_keys=("swrpt",), replicates=2, n_workers=1)
        parallel = run_campaign([config], scheduler_keys=("swrpt",), replicates=2, n_workers=2)
        def key(r):
            return (r.config, r.replicate, r.scheduler)

        for rs, rp in zip(sorted(serial, key=key), sorted(parallel, key=key)):
            assert rs.max_stretch == pytest.approx(rp.max_stretch)

    def test_progress_callback(self):
        config = ExperimentConfig(
            name="progress",
            n_clusters=2,
            n_databanks=2,
            availability=0.6,
            density=1.0,
            processors_per_cluster=2,
            window=15.0,
            max_jobs=5,
        )
        messages: list[str] = []
        run_campaign(
            [config], scheduler_keys=("swrpt",), replicates=2, progress=messages.append
        )
        assert len(messages) == 2


class TestStatistics:
    def test_degradations_normalized_by_best(self, tiny_campaign):
        degradations = compute_degradations(tiny_campaign)
        by_instance: dict[tuple[str, int], list[float]] = {}
        for record in degradations:
            assert record.max_stretch_degradation >= 1.0 - 1e-9
            assert record.sum_stretch_degradation >= 1.0 - 1e-9
            by_instance.setdefault((record.config, record.replicate), []).append(
                record.max_stretch_degradation
            )
        # The best heuristic on each instance scores exactly 1.
        for values in by_instance.values():
            assert min(values) == pytest.approx(1.0)

    def test_summarize_rows(self, tiny_campaign):
        rows = summarize(compute_degradations(tiny_campaign))
        assert {row.scheduler for row in rows} == {"SWRPT", "SRPT", "MCT"}
        for row in rows:
            assert row.max_stretch_max >= row.max_stretch_mean >= 1.0 - 1e-9
            assert row.sum_stretch_max >= row.sum_stretch_mean >= 1.0 - 1e-9
            assert row.n_instances == 4

    def test_summarize_respects_order(self, tiny_campaign):
        rows = summarize(
            compute_degradations(tiny_campaign), scheduler_order=("MCT", "SRPT", "SWRPT")
        )
        assert [row.scheduler for row in rows] == ["MCT", "SRPT", "SWRPT"]

    def test_failed_records_excluded(self):
        records = [
            RunRecord(
                config="c", replicate=0, scheduler="ok", n_jobs=1, n_clusters=1,
                n_databanks=1, availability=0.5, density=1.0, max_stretch=2.0,
                sum_stretch=2.0, max_flow=1.0, sum_flow=1.0, makespan=1.0,
                scheduler_time=0.0,
            ),
            RunRecord(
                config="c", replicate=0, scheduler="broken", n_jobs=1, n_clusters=1,
                n_databanks=1, availability=0.5, density=1.0, max_stretch=math.nan,
                sum_stretch=math.nan, max_flow=math.nan, sum_flow=math.nan,
                makespan=math.nan, scheduler_time=math.nan, failed=True,
            ),
        ]
        degradations = compute_degradations(ExperimentResults(records))
        assert [d.scheduler for d in degradations] == ["ok"]


class TestTables:
    def test_table1_contains_all_schedulers(self, tiny_campaign):
        text = table1(tiny_campaign).render()
        for name in ("SWRPT", "SRPT", "MCT"):
            assert name in text
        assert "Table 1" in text

    def test_breakdown_tables(self, tiny_campaign):
        assert set(tables_by_sites(tiny_campaign)) == {2, 3}
        assert set(tables_by_density(tiny_campaign)) == {0.75, 1.5}
        assert set(tables_by_databases(tiny_campaign)) == {2, 3}
        assert set(tables_by_availability(tiny_campaign)) == {0.6, 0.9}
        for table in tables_by_density(tiny_campaign).values():
            assert "MaxS mean" in table.render()


class TestIO:
    def test_csv_round_trip(self, tiny_campaign, tmp_path):
        path = save_records_csv(tiny_campaign, tmp_path / "records.csv")
        loaded = load_records_csv(path)
        assert len(loaded) == len(tiny_campaign)
        def key(r):
            return (r.config, r.replicate, r.scheduler)

        for original, restored in zip(
            sorted(tiny_campaign, key=key), sorted(loaded, key=key)
        ):
            assert restored.max_stretch == pytest.approx(original.max_stretch)
            assert restored.n_jobs == original.n_jobs
            assert restored.failed == original.failed

    def test_json_export(self, tiny_campaign, tmp_path):
        path = save_records_json(tiny_campaign, tmp_path / "records.json")
        assert path.exists()
        import json

        payload = json.loads(path.read_text())
        assert len(payload) == len(tiny_campaign)
        assert {"config", "scheduler", "max_stretch"} <= set(payload[0])


class TestFigure3AndOverhead:
    def test_figure3_sweep_small(self):
        configs = figure3_configurations(
            densities=(0.5, 2.0), n_clusters=2, n_databanks=2, window=15.0, max_jobs=6
        )
        points = run_figure3_sweep(configs, replicates=1, base_seed=7)
        assert len(points) == 2
        for point in points:
            assert point.optimized_max_stretch_degradation >= -1e-6
            assert point.n_instances == 1
        series_a = figure3a(points)
        series_b = figure3b(points)
        assert len(series_a) == len(series_b) == 2
        assert series_a[0][0] == 0.5

    def test_overhead_comparison(self):
        records = scheduling_overhead(
            scheduler_keys=("swrpt", "offline", "bender02"),
            n_clusters=2,
            n_databanks=2,
            window=15.0,
            max_jobs=6,
            replicates=1,
        )
        names = {r.scheduler for r in records}
        assert names == {"SWRPT", "Offline", "Bender02"}
        for record in records:
            assert record.mean_scheduler_time >= 0.0
            assert record.mean_decisions > 0
        offline = next(r for r in records if r.scheduler == "Offline")
        swrpt = next(r for r in records if r.scheduler == "SWRPT")
        # The LP-based off-line solver costs far more scheduler time than a
        # simple list heuristic (the Section 5.3 ordering).
        assert offline.mean_scheduler_time > swrpt.mean_scheduler_time
