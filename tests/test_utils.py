"""Unit tests for :mod:`repro.utils` (seeding, validation, text tables)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.seeding import derive_seed, spawn_children, spawn_rng
from repro.utils.textable import TextTable
from repro.utils.validation import (
    almost_equal,
    almost_geq,
    almost_leq,
    require_in_range,
    require_non_negative,
    require_positive,
)


class TestSeeding:
    def test_spawn_rng_from_int_is_reproducible(self):
        a = spawn_rng(42).random(5)
        b = spawn_rng(42).random(5)
        assert np.allclose(a, b)

    def test_spawn_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert spawn_rng(rng) is rng

    def test_spawn_rng_none(self):
        assert isinstance(spawn_rng(None), np.random.Generator)

    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "config", 3) == derive_seed(1, "config", 3)

    def test_derive_seed_varies_with_components(self):
        seeds = {
            derive_seed(1, "a", 0),
            derive_seed(1, "a", 1),
            derive_seed(1, "b", 0),
            derive_seed(2, "a", 0),
        }
        assert len(seeds) == 4

    def test_derive_seed_string_hash_is_stable(self):
        # Uses FNV-1a, not Python's salted hash: must be identical across calls.
        assert derive_seed(0, "stable") == derive_seed(0, "stable")

    def test_spawn_children_independent(self):
        children = spawn_children(7, 4)
        assert len(children) == 4
        assert len(set(children)) == 4


class TestValidation:
    def test_require_positive(self):
        assert require_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            require_positive(0.0, "x")
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")

    def test_require_non_negative(self):
        assert require_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-1e-9, "x")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0.0, 1.0, "x") == 0.5
        with pytest.raises(ValueError):
            require_in_range(1.5, 0.0, 1.0, "x")

    def test_almost_comparisons(self):
        assert almost_equal(1.0, 1.0 + 1e-9)
        assert not almost_equal(1.0, 1.1)
        assert almost_leq(1.0 + 1e-9, 1.0)
        assert almost_geq(1.0 - 1e-9, 1.0)
        assert not almost_leq(1.1, 1.0)


class TestTextTable:
    def test_render_alignment_and_float_format(self):
        table = TextTable(headers=["Name", "Value"], title="demo")
        table.add_row(["alpha", 1.23456])
        table.add_row(["beta", 2])
        text = table.render()
        assert "demo" in text
        assert "1.2346" in text  # default 4-decimal format
        assert "beta" in text

    def test_row_length_checked(self):
        table = TextTable(headers=["A", "B"])
        with pytest.raises(ValueError):
            table.add_row(["only one"])

    def test_str_equals_render(self):
        table = TextTable(headers=["A"])
        table.add_row([1.0])
        assert str(table) == table.render()

    def test_custom_float_format(self):
        table = TextTable(headers=["A"], float_format=".1f")
        table.add_row([3.14159])
        assert "3.1" in table.render()
