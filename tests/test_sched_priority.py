"""Tests for the classical priority heuristics (FCFS, SRPT, SPT, SWPT, SWRPT, EDF)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.schedulers.priority import (
    EDFScheduler,
    FCFSScheduler,
    SPTScheduler,
    SRPTScheduler,
    SWPTScheduler,
    SWRPTScheduler,
)
from repro.simulation.engine import simulate

from helpers import make_uniform_instance


def random_uniprocessor_instance(seed: int, n_jobs: int = 8) -> Instance:
    rng = np.random.default_rng(seed)
    sizes = rng.uniform(0.5, 5.0, size=n_jobs)
    releases = np.cumsum(rng.exponential(1.0, size=n_jobs))
    return make_uniform_instance(list(sizes), list(releases))


class TestFCFS:
    def test_serves_in_release_order(self, uniprocessor_instance):
        result = simulate(uniprocessor_instance, FCFSScheduler())
        completions = result.completions
        assert completions[0] < completions[1] < completions[2]

    def test_fcfs_optimal_for_max_flow(self):
        """FCFS minimizes the max-flow among all tested heuristics [2]."""
        for seed in range(4):
            instance = random_uniprocessor_instance(seed)
            fcfs = simulate(instance, FCFSScheduler()).max_flow
            for scheduler in (SRPTScheduler(), SWRPTScheduler(), SPTScheduler()):
                other = simulate(instance, scheduler).max_flow
                assert fcfs <= other + 1e-9


class TestSRPT:
    def test_srpt_optimal_for_sum_flow(self):
        """SRPT minimizes the sum-flow among all tested heuristics [1]."""
        for seed in range(4):
            instance = random_uniprocessor_instance(seed)
            srpt = simulate(instance, SRPTScheduler()).sum_flow
            for scheduler in (FCFSScheduler(), SWRPTScheduler(), SPTScheduler(), SWPTScheduler()):
                other = simulate(instance, scheduler).sum_flow
                assert srpt <= other + 1e-6

    def test_preempts_long_job_for_short_one(self):
        instance = make_uniform_instance(sizes=[10.0, 1.0], releases=[0.0, 1.0])
        result = simulate(instance, SRPTScheduler())
        # The unit job preempts the long one and completes at t=2.
        assert result.completions[1] == pytest.approx(2.0)
        assert result.completions[0] == pytest.approx(11.0)

    def test_srpt_2_competitive_for_sum_stretch_in_practice(self):
        """[13]: SRPT is 2-competitive for sum-stretch; check against the best observed."""
        for seed in range(4):
            instance = random_uniprocessor_instance(seed)
            results = {
                name: simulate(instance, scheduler).sum_stretch
                for name, scheduler in [
                    ("srpt", SRPTScheduler()),
                    ("swrpt", SWRPTScheduler()),
                    ("spt", SPTScheduler()),
                    ("fcfs", FCFSScheduler()),
                ]
            }
            best = min(results.values())
            assert results["srpt"] <= 2.0 * best + 1e-9


class TestSWRPT:
    def test_ties_with_srpt_on_equal_sizes(self):
        instance = make_uniform_instance(sizes=[2.0, 2.0, 2.0], releases=[0.0, 0.5, 1.0])
        srpt = simulate(instance, SRPTScheduler()).completions
        swrpt = simulate(instance, SWRPTScheduler()).completions
        for job_id in srpt:
            assert srpt[job_id] == pytest.approx(swrpt[job_id])

    def test_swrpt_does_not_preempt_nearly_finished_job(self):
        # Job 0 (size 4) is nearly finished when job 1 (size 2) arrives:
        # remaining 0.5 -> key 4*0.5 = 2 < 2*2 = 4, so job 0 keeps the machine.
        instance = make_uniform_instance(sizes=[4.0, 2.0], releases=[0.0, 3.5])
        result = simulate(instance, SWRPTScheduler())
        assert result.completions[0] == pytest.approx(4.0)
        # SRPT would also keep it here; build a sharper contrast with SPT:
        spt = simulate(instance, SPTScheduler())
        assert spt.completions[0] == pytest.approx(6.0)  # SPT preempts for the smaller job

    def test_swrpt_uses_weight_when_given(self):
        platform = Platform.uniform([1.0], databanks=["db"])
        jobs = [
            Job(0, release=0.0, size=4.0, databank="db", weight=100.0),
            Job(1, release=1.0, size=1.0, databank="db", weight=0.001),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, SWRPTScheduler())
        # Job 0 has enormous weight -> its weighted remaining time is tiny ->
        # it keeps the machine and finishes first.
        assert result.completions[0] < result.completions[1]


class TestSPTAndSWPT:
    def test_spt_and_swpt_identical_for_stretch_weights(self):
        for seed in range(3):
            instance = random_uniprocessor_instance(seed)
            spt = simulate(instance, SPTScheduler()).completions
            swpt = simulate(instance, SWPTScheduler()).completions
            for job_id in spt:
                assert spt[job_id] == pytest.approx(swpt[job_id])

    def test_spt_ignores_remaining_time(self):
        # SPT may preempt an almost-complete long job, unlike SRPT/SWRPT.
        instance = make_uniform_instance(sizes=[4.0, 2.0], releases=[0.0, 3.9])
        spt = simulate(instance, SPTScheduler())
        srpt = simulate(instance, SRPTScheduler())
        assert spt.completions[0] > srpt.completions[0]


class TestEDF:
    def test_edf_with_mapping(self):
        instance = make_uniform_instance(sizes=[2.0, 2.0], releases=[0.0, 0.0])
        scheduler = EDFScheduler({0: 10.0, 1: 2.0})
        result = simulate(instance, scheduler)
        # Job 1 has the earlier deadline: served first.
        assert result.completions[1] < result.completions[0]

    def test_edf_with_callable(self):
        instance = make_uniform_instance(sizes=[2.0, 2.0], releases=[0.0, 0.0])
        scheduler = EDFScheduler(lambda job_id: 1.0 if job_id == 0 else 5.0)
        result = simulate(instance, scheduler)
        assert result.completions[0] < result.completions[1]

    def test_edf_without_deadlines_behaves_like_fcfs(self):
        instance = make_uniform_instance(sizes=[3.0, 1.0], releases=[0.0, 0.5])
        edf = simulate(instance, EDFScheduler())
        fcfs = simulate(instance, FCFSScheduler())
        for job_id in edf.completions:
            assert edf.completions[job_id] == pytest.approx(fcfs.completions[job_id])

    def test_set_deadlines_overrides(self):
        scheduler = EDFScheduler({0: 5.0})
        scheduler.set_deadlines({0: 1.0, 1: 2.0})
        assert scheduler.deadline_of(0) == 1.0
        assert scheduler.deadline_of(1) == 2.0
        assert scheduler.deadline_of(7) == float("inf")


class TestGreedyDistributionRule:
    def test_top_priority_job_gets_all_machines(self):
        """Section 3 rule: the most urgent job grabs every available eligible machine."""
        platform = Platform.uniform([1.0, 1.0, 1.0], databanks=["db"])
        jobs = [
            Job(0, release=0.0, size=9.0, databank="db"),
            Job(1, release=0.0, size=3.0, databank="db"),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, SRPTScheduler())
        # Job 1 (smaller) takes all three machines: done at t=1; then job 0 at 1+3=4.
        assert result.completions[1] == pytest.approx(1.0)
        assert result.completions[0] == pytest.approx(4.0)

    def test_lower_priority_job_uses_leftover_machines(self):
        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 1, frozenset({"b"})),
            ]
        )
        jobs = [
            Job(0, release=0.0, size=1.0, databank="a"),
            Job(1, release=0.0, size=5.0, databank="b"),
        ]
        instance = Instance(jobs, platform)
        result = simulate(instance, SRPTScheduler())
        # Even though job 0 has priority, job 1 runs concurrently on machine 1.
        assert result.completions[0] == pytest.approx(1.0)
        assert result.completions[1] == pytest.approx(5.0)
