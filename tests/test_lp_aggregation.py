"""Unit tests for :mod:`repro.lp.aggregation` (materialization of LP allocations)."""

from __future__ import annotations

import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.core import metrics
from repro.lp.aggregation import (
    edf_order,
    materialize_solution,
    split_work_across_machines,
    swrpt_terminal_order,
)
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.lp.relaxation import reoptimize_allocation


@pytest.fixture
def restricted_instance() -> Instance:
    platform = Platform(
        [
            Machine(0, 1.0, 0, frozenset({"a"})),
            Machine(1, 0.5, 0, frozenset({"a"})),
            Machine(2, 1.0, 1, frozenset({"a", "b"})),
            Machine(3, 2.0, 2, frozenset({"b"})),
        ]
    )
    jobs = [
        Job(0, release=0.0, size=6.0, databank="a"),
        Job(1, release=0.5, size=1.0, databank="b"),
        Job(2, release=1.0, size=2.0, databank="a"),
        Job(3, release=1.5, size=1.0, databank="b"),
    ]
    return Instance(jobs, platform)


class TestSplitWork:
    def test_split_across_machines_proportional(self, restricted_instance):
        slices = split_work_across_machines(
            restricted_instance, [0, 1], job_id=0, start=1.0, end=3.0
        )
        works = {s.machine_id: s.work for s in slices}
        assert works[0] == pytest.approx(2.0)   # speed 1 over 2 seconds
        assert works[1] == pytest.approx(4.0)   # speed 2 over 2 seconds
        assert all(s.start == 1.0 and s.end == 3.0 for s in slices)

    def test_empty_interval_gives_no_slices(self, restricted_instance):
        assert split_work_across_machines(restricted_instance, [0], 0, 2.0, 2.0) == []


class TestMaterializeSolution:
    def test_materialized_schedule_is_valid_and_optimal(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        solution = minimize_max_weighted_flow(problem)
        schedule = materialize_solution(solution, restricted_instance)
        schedule.validate(restricted_instance)
        achieved = metrics.max_stretch(restricted_instance, schedule.completion_times())
        assert achieved <= solution.objective + 1e-6

    def test_materialized_schedule_with_swrpt_order(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        best = minimize_max_weighted_flow(problem)
        reopt = reoptimize_allocation(problem, best.objective)
        schedule = materialize_solution(
            reopt, restricted_instance, order_rule=swrpt_terminal_order
        )
        schedule.validate(restricted_instance)
        achieved = metrics.max_stretch(restricted_instance, schedule.completion_times())
        assert achieved <= reopt.objective + 1e-6

    def test_slices_stay_inside_their_intervals(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        solution = minimize_max_weighted_flow(problem)
        schedule = materialize_solution(solution, restricted_instance)
        boundaries = [b for pair in solution.interval_bounds for b in pair]
        horizon = max(boundaries)
        for s in schedule:
            assert s.start >= min(boundaries) - 1e-9
            assert s.end <= horizon + 1e-9

    def test_order_rules_preserve_allocation_content(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        solution = minimize_max_weighted_flow(problem)
        for rule in (edf_order, swrpt_terminal_order):
            schedule = materialize_solution(solution, restricted_instance, order_rule=rule)
            for job in restricted_instance.jobs:
                assert schedule.work_done(job.job_id) == pytest.approx(job.size, rel=1e-5)


class TestOrderRules:
    def test_edf_order_sorts_by_deadline(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        solution = minimize_max_weighted_flow(problem)
        allocations = [(0, 1.0), (2, 1.0)]
        ordered = edf_order(solution, 0, 0, allocations)
        deadlines = [solution.deadline(job_id) for job_id, _ in ordered]
        assert deadlines == sorted(deadlines)

    def test_swrpt_terminal_order_puts_terminal_jobs_first(self, restricted_instance):
        problem = problem_from_instance(restricted_instance)
        solution = minimize_max_weighted_flow(problem)
        # Use the real allocation of the last interval: every job allocated
        # there is terminal for that resource, so the order must follow the
        # SWRPT key (flow_factor * remaining).
        last = max(t for (t, _, _) in solution.allocations)
        per_resource: dict[int, list[tuple[int, float]]] = {}
        for (t, c, j), w in solution.allocations.items():
            if t == last:
                per_resource.setdefault(c, []).append((j, w))
        for resource, allocations in per_resource.items():
            ordered = swrpt_terminal_order(solution, last, resource, allocations)
            assert sorted(j for j, _ in ordered) == sorted(j for j, _ in allocations)
