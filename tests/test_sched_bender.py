"""Tests for the Bender98 and Bender02 heuristics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.schedulers.bender02 import Bender02Scheduler
from repro.schedulers.bender98 import Bender98Scheduler
from repro.schedulers.offline import OfflineScheduler
from repro.simulation.engine import simulate
from repro.simulation.state import SchedulerState

from helpers import make_uniform_instance


class TestBender02:
    def test_pseudo_stretch_formula(self):
        instance = make_uniform_instance(sizes=[1.0, 16.0], releases=[0.0, 0.0])
        scheduler = Bender02Scheduler()
        scheduler.reset(instance)
        state = SchedulerState(instance)
        state.release(instance.job(0))
        state.release(instance.job(1))
        state.time = 8.0
        delta = 16.0
        small = state.active[0]
        large = state.active[1]
        # Small job (relative size 1 <= sqrt(16)=4): age / sqrt(delta).
        assert scheduler.pseudo_stretch(state, small) == pytest.approx(8.0 / math.sqrt(delta))
        # Large job (relative size 16 > 4): age / delta.
        assert scheduler.pseudo_stretch(state, large) == pytest.approx(8.0 / delta)

    def test_higher_pseudo_stretch_scheduled_first(self):
        # Both jobs waiting equally long: the small job has the larger
        # pseudo-stretch and must be served first.
        instance = make_uniform_instance(sizes=[1.0, 16.0], releases=[0.0, 0.0])
        result = simulate(instance, Bender02Scheduler())
        assert result.completions[0] < result.completions[1]

    def test_observed_delta_mode(self):
        instance = make_uniform_instance(sizes=[2.0, 8.0], releases=[0.0, 1.0])
        result = simulate(instance, Bender02Scheduler(delta_mode="observed"))
        assert set(result.completions) == {0, 1}

    def test_invalid_delta_mode(self):
        with pytest.raises(ValueError):
            Bender02Scheduler(delta_mode="whatever")

    def test_schedule_valid_on_restricted_platform(self, restricted_instance):
        result = simulate(restricted_instance, Bender02Scheduler())
        result.schedule.validate(restricted_instance)

    def test_worse_than_lp_heuristics_for_max_stretch(self, restricted_instance):
        """Table 1: Bender02 is far from optimal for max-stretch."""
        offline = simulate(restricted_instance, OfflineScheduler())
        bender = simulate(restricted_instance, Bender02Scheduler())
        assert bender.max_stretch >= offline.max_stretch - 1e-9


class TestBender98:
    def test_deadlines_follow_expanded_optimum(self):
        instance = make_uniform_instance(sizes=[4.0, 1.0], releases=[0.0, 1.0])
        scheduler = Bender98Scheduler()
        result = simulate(instance, scheduler)
        result.schedule.validate(instance)
        # One off-line resolution per arrival.
        assert scheduler.n_resolutions == 2

    def test_expansion_factor_default_sqrt_delta(self):
        instance = make_uniform_instance(sizes=[4.0, 1.0], releases=[0.0, 1.0])
        scheduler = Bender98Scheduler()
        scheduler.reset(instance)
        assert scheduler._expansion == pytest.approx(math.sqrt(4.0))

    def test_explicit_expansion_factor(self):
        instance = make_uniform_instance(sizes=[4.0, 1.0], releases=[0.0, 1.0])
        scheduler = Bender98Scheduler(expansion=1.0)
        scheduler.reset(instance)
        assert scheduler._expansion == 1.0

    def test_resolution_cap(self):
        rng = np.random.default_rng(0)
        sizes = list(rng.uniform(0.5, 3.0, size=6))
        releases = list(np.cumsum(rng.exponential(0.5, size=6)))
        instance = make_uniform_instance(sizes, releases)
        scheduler = Bender98Scheduler(max_jobs_per_resolution=3)
        result = simulate(instance, scheduler)
        assert set(result.completions) == set(instance.jobs.ids())

    def test_reasonable_max_stretch_but_not_optimal_in_general(self, restricted_instance):
        offline = simulate(restricted_instance, OfflineScheduler())
        bender = simulate(restricted_instance, Bender98Scheduler())
        bender.schedule.validate(restricted_instance)
        assert bender.max_stretch >= offline.max_stretch - 1e-9
        # With the sqrt(Delta) expansion it should still avoid catastrophic
        # starvation (well below the MCT-style blow-ups).
        assert bender.max_stretch <= 10 * offline.max_stretch

    def test_overhead_grows_with_arrivals(self):
        """Bender98 solves one off-line problem per release date (its known weakness)."""
        rng = np.random.default_rng(1)
        sizes = list(rng.uniform(0.5, 3.0, size=8))
        releases = list(np.cumsum(rng.exponential(0.5, size=8)))
        instance = make_uniform_instance(sizes, releases)
        scheduler = Bender98Scheduler()
        simulate(instance, scheduler)
        assert scheduler.n_resolutions == 8
