"""End-to-end integration tests reproducing the paper's qualitative findings.

These tests run miniature versions of the Section 5 experiments and check the
*shape* of the results reported in Table 1 and Figure 3: which heuristics win
each metric, and by roughly what kind of margin.  They intentionally use
small workloads so the whole suite stays fast; the full-scale reproduction
lives in the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import run_campaign
from repro.experiments.statistics import compute_degradations, summarize
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

SCHEDULERS = (
    "offline",
    "online",
    "online-edf",
    "online-egdf",
    "swrpt",
    "srpt",
    "spt",
    "bender02",
    "mct-div",
    "mct",
)


@pytest.fixture(scope="module")
def mini_campaign_rows():
    """Aggregate degradation rows over a small two-configuration campaign."""
    configs = [
        ExperimentConfig(
            name="mini-3c", n_clusters=3, n_databanks=3, availability=0.6, density=1.0,
            processors_per_cluster=5, window=25.0, max_jobs=12,
        ),
        ExperimentConfig(
            name="mini-2c", n_clusters=2, n_databanks=2, availability=0.9, density=2.0,
            processors_per_cluster=5, window=25.0, max_jobs=12,
        ),
    ]
    results = run_campaign(configs, scheduler_keys=SCHEDULERS, replicates=2, base_seed=17)
    rows = summarize(compute_degradations(results))
    return {row.scheduler: row for row in rows}


class TestTable1Shape:
    def test_all_schedulers_present(self, mini_campaign_rows):
        assert len(mini_campaign_rows) == len(SCHEDULERS)

    def test_offline_is_reference_for_max_stretch(self, mini_campaign_rows):
        # Offline is (near-)optimal for max-stretch: mean degradation ~ 1.
        assert mini_campaign_rows["Offline"].max_stretch_mean <= 1.01

    def test_online_variants_near_optimal_max_stretch(self, mini_campaign_rows):
        for name in ("Online", "Online-EDF"):
            assert mini_campaign_rows[name].max_stretch_mean <= 1.1

    def test_mct_much_worse_for_max_stretch(self, mini_campaign_rows):
        """The production policy is by far the worst max-stretch strategy."""
        mct = mini_campaign_rows["MCT"].max_stretch_mean
        best_online = mini_campaign_rows["Online"].max_stretch_mean
        assert mct > 2.0 * best_online
        assert mct == max(row.max_stretch_mean for row in mini_campaign_rows.values())

    def test_swrpt_family_best_for_sum_stretch(self, mini_campaign_rows):
        sum_means = {name: row.sum_stretch_mean for name, row in mini_campaign_rows.items()}
        best = min(sum_means.values())
        for name in ("SWRPT", "SRPT", "Online-EGDF"):
            assert sum_means[name] <= best * 1.15

    def test_offline_trades_sum_stretch_for_max_stretch(self, mini_campaign_rows):
        # Offline only optimizes max-stretch; its sum-stretch degradation is the
        # largest among the stretch-aware strategies (Table 1: 1.67 vs ~1.0).
        offline_sum = mini_campaign_rows["Offline"].sum_stretch_mean
        assert offline_sum > mini_campaign_rows["SWRPT"].sum_stretch_mean
        assert offline_sum > mini_campaign_rows["Online"].sum_stretch_mean

    def test_online_beats_nonoptimized_tradeoff(self):
        """Figure 3: the System (2) pass only helps the sum-stretch."""
        spec_p = PlatformSpec(n_clusters=2, processors_per_cluster=4, n_databanks=2,
                              availability=0.8)
        spec_w = WorkloadSpec(density=1.5, window=25.0, max_jobs=12)
        gains = []
        for seed in range(3):
            instance = generate_instance(spec_p, spec_w, rng=seed)
            optimized = simulate(instance, make_scheduler("online"))
            plain = simulate(instance, make_scheduler("online-nonopt"))
            assert optimized.max_stretch <= plain.max_stretch * 1.05
            gains.append(plain.sum_stretch - optimized.sum_stretch)
        assert np.mean(gains) >= -1e-9


class TestBenderComparison:
    def test_bender02_weaker_than_lp_online_for_max_stretch(self):
        spec_p = PlatformSpec(n_clusters=2, processors_per_cluster=4, n_databanks=2,
                              availability=0.8)
        spec_w = WorkloadSpec(density=2.0, window=25.0, max_jobs=12)
        ratios = []
        for seed in range(3):
            instance = generate_instance(spec_p, spec_w, rng=100 + seed)
            online = simulate(instance, make_scheduler("online"))
            bender = simulate(instance, make_scheduler("bender02"))
            ratios.append(bender.max_stretch / online.max_stretch)
        assert np.mean(ratios) >= 1.0

    def test_bender98_overhead_dominates_online(self):
        """Section 5.3: Bender98 spends far more time scheduling than the on-line heuristics."""
        spec_p = PlatformSpec(n_clusters=2, processors_per_cluster=4, n_databanks=2,
                              availability=0.8)
        spec_w = WorkloadSpec(density=1.0, window=25.0, max_jobs=10)
        instance = generate_instance(spec_p, spec_w, rng=7)
        bender = simulate(instance, make_scheduler("bender98"))
        swrpt = simulate(instance, make_scheduler("swrpt"))
        assert bender.scheduler_time > swrpt.scheduler_time


def _load_example(name: str):
    """Import an example script by file path (examples/ is not a package)."""
    import importlib.util
    from pathlib import Path

    path = Path(__file__).resolve().parent.parent / "examples" / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


class TestExamplesRun:
    """The shipped examples must at least run on reduced inputs."""

    def test_quickstart_example(self, capsys):
        _load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "max-stretch" in out
        assert "Gantt" in out

    def test_lemma1_example(self, capsys):
        _load_example("lemma1_equivalence").main()
        out = capsys.readouterr().out
        assert "Forward transformation never increases completion times: True" in out

    def test_online_portal_example(self, capsys):
        _load_example("online_portal").main()
        out = capsys.readouterr().out
        assert "Policy" in out
        assert "Online" in out
