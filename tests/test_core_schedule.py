"""Unit tests for :mod:`repro.core.schedule`."""

from __future__ import annotations

import pytest

from repro.core.errors import ScheduleError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.core.schedule import Schedule, WorkSlice


@pytest.fixture
def instance() -> Instance:
    platform = Platform(
        [
            Machine(0, 1.0, 0, frozenset({"a"})),
            Machine(1, 0.5, 1, frozenset({"a", "b"})),
        ]
    )
    jobs = [
        Job(0, release=0.0, size=3.0, databank="a"),
        Job(1, release=1.0, size=2.0, databank="b"),
    ]
    return Instance(jobs, platform)


def valid_schedule() -> Schedule:
    return Schedule(
        [
            WorkSlice(job_id=0, machine_id=0, start=0.0, end=1.0, work=1.0),
            WorkSlice(job_id=0, machine_id=1, start=0.0, end=1.0, work=2.0),
            WorkSlice(job_id=1, machine_id=1, start=1.0, end=2.0, work=2.0),
        ]
    )


class TestWorkSlice:
    def test_duration(self):
        s = WorkSlice(0, 0, 1.0, 3.0, 2.0)
        assert s.duration == pytest.approx(2.0)

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ScheduleError):
            WorkSlice(0, 0, 1.0, 1.0, 1.0)
        with pytest.raises(ScheduleError):
            WorkSlice(0, 0, 2.0, 1.0, 1.0)

    def test_rejects_non_positive_work(self):
        with pytest.raises(ScheduleError):
            WorkSlice(0, 0, 0.0, 1.0, 0.0)


class TestScheduleQueries:
    def test_completion_times(self, instance):
        schedule = valid_schedule()
        completions = schedule.completion_times()
        assert completions[0] == pytest.approx(1.0)
        assert completions[1] == pytest.approx(2.0)
        assert schedule.completion_time(1) == pytest.approx(2.0)

    def test_makespan_and_start_time(self):
        schedule = valid_schedule()
        assert schedule.makespan() == pytest.approx(2.0)
        assert schedule.start_time(1) == pytest.approx(1.0)
        assert Schedule([]).makespan() == 0.0

    def test_work_done_and_busy_time(self, instance):
        schedule = valid_schedule()
        assert schedule.work_done(0) == pytest.approx(3.0)
        assert schedule.busy_time(1) == pytest.approx(2.0)
        assert schedule.busy_time(0) == pytest.approx(1.0)

    def test_machine_utilization(self, instance):
        schedule = valid_schedule()
        util = schedule.machine_utilization(instance)
        assert util[0] == pytest.approx(0.5)
        assert util[1] == pytest.approx(1.0)

    def test_slices_lookup(self):
        schedule = valid_schedule()
        assert len(schedule.slices_for_job(0)) == 2
        assert len(schedule.slices_on_machine(1)) == 2
        assert schedule.job_ids() == frozenset({0, 1})
        assert schedule.machine_ids() == frozenset({0, 1})

    def test_preemption_count_zero_for_contiguous(self):
        schedule = valid_schedule()
        assert schedule.preemption_count() == 0

    def test_preemption_count_detects_gap(self):
        schedule = Schedule(
            [
                WorkSlice(0, 0, 0.0, 1.0, 1.0),
                WorkSlice(0, 0, 2.0, 3.0, 1.0),
            ]
        )
        assert schedule.preemption_count() == 1

    def test_merged_with(self):
        a = Schedule([WorkSlice(0, 0, 0.0, 1.0, 1.0)])
        b = Schedule([WorkSlice(1, 0, 1.0, 2.0, 1.0)])
        assert len(a.merged_with(b)) == 2

    def test_gantt_renders(self, instance):
        text = valid_schedule().gantt(instance, width=20)
        assert "M0" in text and "M1" in text
        assert Schedule([]).gantt(instance) == "(empty schedule)"


class TestValidation:
    def test_valid_schedule_passes(self, instance):
        valid_schedule().validate(instance)

    def test_unknown_job_detected(self, instance):
        schedule = Schedule([WorkSlice(42, 0, 0.0, 1.0, 1.0)])
        problems = schedule.violations(instance, require_complete=False)
        assert any("unknown job" in p for p in problems)

    def test_unknown_machine_detected(self, instance):
        schedule = Schedule([WorkSlice(0, 42, 0.0, 1.0, 1.0)])
        problems = schedule.violations(instance, require_complete=False)
        assert any("unknown machine" in p for p in problems)

    def test_release_violation_detected(self, instance):
        schedule = Schedule([WorkSlice(1, 1, 0.0, 1.0, 2.0)])  # job 1 releases at 1.0
        problems = schedule.violations(instance, require_complete=False)
        assert any("before its release" in p for p in problems)

    def test_databank_violation_detected(self, instance):
        schedule = Schedule([WorkSlice(1, 0, 1.0, 2.0, 1.0)])  # machine 0 lacks databank b
        problems = schedule.violations(instance, require_complete=False)
        assert any("does not host" in p for p in problems)

    def test_capacity_violation_detected(self, instance):
        # Machine 1 has speed 2: doing 5 units of work in 1 second is impossible.
        schedule = Schedule([WorkSlice(0, 1, 0.0, 1.0, 5.0)])
        problems = schedule.violations(instance, require_complete=False)
        assert any("capacity" in p for p in problems)

    def test_overlap_detected(self, instance):
        schedule = Schedule(
            [
                WorkSlice(0, 0, 0.0, 1.0, 1.0),
                WorkSlice(0, 0, 0.5, 1.5, 1.0),
            ]
        )
        problems = schedule.violations(instance, require_complete=False)
        assert any("overlaps" in p for p in problems)

    def test_incomplete_execution_detected(self, instance):
        schedule = Schedule([WorkSlice(0, 0, 0.0, 1.0, 1.0)])
        problems = schedule.violations(instance)
        assert any("executed" in p for p in problems)
        # but passes when completeness is not required
        assert schedule.violations(instance, require_complete=False) == []

    def test_validate_raises_schedule_error(self, instance):
        schedule = Schedule([WorkSlice(0, 0, 0.0, 1.0, 1.0)])
        with pytest.raises(ScheduleError):
            schedule.validate(instance)
