"""Unit tests for System (1): :mod:`repro.lp.maxstretch`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.lp.maxstretch import minimize_max_weighted_flow, solve_on_objective_range
from repro.lp.problem import LPJob, MaxStretchProblem, Resource, problem_from_instance


def single_resource_problem(jobs) -> MaxStretchProblem:
    return MaxStretchProblem(
        resources=(Resource(0, speed=1.0, machine_ids=(0,)),), jobs=tuple(jobs)
    )


class TestSingleJob:
    def test_single_job_optimal_stretch_is_one(self):
        problem = single_resource_problem(
            [LPJob(0, earliest_start=0.0, remaining_work=5.0, release=0.0,
                   flow_factor=5.0, resources=(0,))]
        )
        solution = minimize_max_weighted_flow(problem)
        # The job alone needs 5 seconds and its flow factor is 5 -> stretch 1.
        assert solution.objective == pytest.approx(1.0)
        assert solution.work_for_job(0) == pytest.approx(5.0)

    def test_empty_problem(self):
        problem = MaxStretchProblem(resources=(), jobs=())
        solution = minimize_max_weighted_flow(problem)
        assert solution.objective == 0.0
        assert solution.allocations == {}


class TestTwoJobs:
    def make_problem(self) -> MaxStretchProblem:
        # Job 0: size 4 released at 0; job 1: size 1 released at 2.
        # Stretch weights (flow factor = size on a unit-speed machine).
        return single_resource_problem(
            [
                LPJob(0, earliest_start=0.0, remaining_work=4.0, release=0.0,
                      flow_factor=4.0, resources=(0,)),
                LPJob(1, earliest_start=2.0, remaining_work=1.0, release=2.0,
                      flow_factor=1.0, resources=(0,)),
            ]
        )

    def test_known_optimum(self):
        # Analysis: with deadline d0 = 4F and d1 = 2 + F, total work by
        # max(d0, d1) must fit.  Best trade-off: finish both by time 5 with
        # F = 5/4 = 1.25: d0 = 5, d1 = 3.25 >= completion of job 1 if it is
        # served right at its release (2 -> 3).  Check the LP agrees with a
        # direct numerical search.
        problem = self.make_problem()
        solution = minimize_max_weighted_flow(problem)
        brute = self.brute_force_optimum(problem)
        assert solution.objective == pytest.approx(brute, rel=1e-6)

    @staticmethod
    def brute_force_optimum(problem: MaxStretchProblem) -> float:
        """Bisection on F using a simple EDF feasibility test (single machine)."""

        def feasible(f: float) -> bool:
            jobs = sorted(problem.jobs, key=lambda j: j.deadline(f))
            time = 0.0
            # Preemptive EDF on one machine is optimal for deadline feasibility;
            # here releases equal earliest starts, so simulate it coarsely.
            events = sorted({j.earliest_start for j in jobs} | {j.deadline(f) for j in jobs})
            remaining = {j.job_id: j.remaining_work for j in jobs}
            for start, end in zip(events, events[1:]):
                span = end - start
                for job in sorted(jobs, key=lambda j: j.deadline(f)):
                    if job.earliest_start > start + 1e-12 or remaining[job.job_id] <= 0:
                        continue
                    done = min(span, remaining[job.job_id])
                    remaining[job.job_id] -= done
                    span -= done
                    if span <= 0:
                        break
            for job in jobs:
                if remaining[job.job_id] > 1e-9:
                    return False
            return True

        lo, hi = 0.0, 100.0
        for _ in range(60):
            mid = 0.5 * (lo + hi)
            if feasible(mid):
                hi = mid
            else:
                lo = mid
        return hi

    def test_allocation_respects_deadlines(self):
        problem = self.make_problem()
        solution = minimize_max_weighted_flow(problem)
        assert solution.max_weighted_flow_of_allocation() <= solution.objective + 1e-6

    def test_allocation_is_complete(self):
        problem = self.make_problem()
        solution = minimize_max_weighted_flow(problem)
        for job in problem.jobs:
            assert solution.work_for_job(job.job_id) == pytest.approx(
                job.remaining_work, rel=1e-6
            )

    def test_solution_lookups(self):
        problem = self.make_problem()
        solution = minimize_max_weighted_flow(problem)
        assert solution.deadline(0) == pytest.approx(solution.objective * 4.0)
        assert 0 in solution.jobs_on_resource(0)
        first_resource = solution.completion_interval_on_resource(0, 0)
        assert solution.completion_interval(0) >= first_resource or True
        interval_allocs = solution.allocations_in_interval(solution.completion_interval(0))
        assert any(job == 0 for (_, job) in interval_allocs)


class TestObjectiveRange:
    def test_infeasible_below_lower_bound(self):
        problem = single_resource_problem(
            [LPJob(0, earliest_start=0.0, remaining_work=5.0, release=0.0,
                   flow_factor=5.0, resources=(0,))]
        )
        assert solve_on_objective_range(problem, 0.1, 0.5) is None

    def test_feasible_range_returns_lower_end(self):
        problem = single_resource_problem(
            [LPJob(0, earliest_start=0.0, remaining_work=5.0, release=0.0,
                   flow_factor=5.0, resources=(0,))]
        )
        solution = solve_on_objective_range(problem, 2.0, 3.0)
        assert solution is not None
        assert solution.objective == pytest.approx(2.0)

    def test_invalid_range_rejected(self):
        problem = single_resource_problem(
            [LPJob(0, earliest_start=0.0, remaining_work=5.0, release=0.0,
                   flow_factor=5.0, resources=(0,))]
        )
        with pytest.raises(ValueError):
            solve_on_objective_range(problem, 3.0, 2.0)


class TestOptimalityProperties:
    def test_optimum_below_every_heuristic(self):
        """The LP optimum must lower-bound the max-stretch of simulated heuristics."""
        from repro.schedulers.registry import make_scheduler
        from repro.simulation.engine import simulate

        rng = np.random.default_rng(3)
        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 0.5, 1, frozenset({"a", "b"})),
                Machine(2, 2.0, 2, frozenset({"b"})),
            ]
        )
        for trial in range(3):
            jobs = []
            t = 0.0
            for i in range(6):
                t += float(rng.exponential(1.0))
                bank = "a" if i % 2 else "b"
                jobs.append(Job(i, release=t, size=float(rng.uniform(0.5, 4.0)), databank=bank))
            instance = Instance(jobs, platform)
            optimum = minimize_max_weighted_flow(problem_from_instance(instance)).objective
            for key in ("srpt", "swrpt", "fcfs", "mct"):
                result = simulate(instance, make_scheduler(key))
                assert result.max_stretch >= optimum - 1e-6

    def test_monotone_in_added_jobs(self):
        base = [
            LPJob(0, earliest_start=0.0, remaining_work=4.0, release=0.0,
                  flow_factor=4.0, resources=(0,)),
            LPJob(1, earliest_start=1.0, remaining_work=2.0, release=1.0,
                  flow_factor=2.0, resources=(0,)),
        ]
        extra = LPJob(2, earliest_start=1.5, remaining_work=3.0, release=1.5,
                      flow_factor=3.0, resources=(0,))
        small = minimize_max_weighted_flow(single_resource_problem(base))
        large = minimize_max_weighted_flow(single_resource_problem(base + [extra]))
        assert large.objective >= small.objective - 1e-9

    def test_max_milestones_cap_gives_upper_bound(self):
        jobs = [
            LPJob(i, earliest_start=float(i) * 0.7, remaining_work=1.0 + (i % 3),
                  release=float(i) * 0.7, flow_factor=1.0 + (i % 3), resources=(0,))
            for i in range(6)
        ]
        problem = single_resource_problem(jobs)
        exact = minimize_max_weighted_flow(problem)
        capped = minimize_max_weighted_flow(problem, max_milestones=3)
        assert capped.objective >= exact.objective - 1e-9


class TestVectorizedAssembly:
    """The COO-block skeleton assembly reproduces the historical per-row loop."""

    def make_problem(self) -> MaxStretchProblem:
        resources = (
            Resource(0, speed=2.0, machine_ids=(0, 1)),
            Resource(1, speed=1.5, machine_ids=(2,)),
        )
        jobs = (
            LPJob(0, earliest_start=0.0, remaining_work=4.0, release=0.0,
                  flow_factor=2.0, resources=(0,)),
            LPJob(1, earliest_start=1.0, remaining_work=3.0, release=1.0,
                  flow_factor=1.0, resources=(0, 1)),
            LPJob(2, earliest_start=1.5, remaining_work=2.0, release=1.5,
                  flow_factor=1.5, resources=(1,)),
        )
        return MaxStretchProblem(resources=resources, jobs=jobs)

    @staticmethod
    def _reference_assemble(builder, problem, skeleton, *, offset, f_var, objective_value):
        """The historical scalar assembly loop, kept verbatim as the oracle."""
        structure = skeleton.structure
        for (t, c), positions in skeleton.capacity_groups:
            length = structure.interval_length(t)
            speed = problem.resources[c].speed
            terms = [(pos + offset, 1.0) for pos in positions]
            if f_var is not None:
                terms.append((f_var, -speed * length.coef))
                rhs = speed * length.const
            else:
                rhs = speed * max(0.0, length.at(objective_value))
            builder.add_leq(terms, rhs)
        for pos_job, positions in skeleton.completeness_groups:
            builder.add_eq(
                [(pos + offset, 1.0) for pos in positions],
                problem.jobs[pos_job].remaining_work,
            )

    @staticmethod
    def _dense(spec):
        """Dense (A_ub, b_ub, A_eq, b_eq) canonicalization of a spec."""
        import numpy as np
        from scipy import sparse

        a_ub = sparse.coo_matrix(
            (list(spec.ub_vals), (list(spec.ub_rows), list(spec.ub_cols))),
            shape=(len(spec.ub_rhs), spec.n_vars),
        ).toarray()
        a_eq = sparse.coo_matrix(
            (list(spec.eq_vals), (list(spec.eq_rows), list(spec.eq_cols))),
            shape=(len(spec.eq_rhs), spec.n_vars),
        ).toarray()
        return a_ub, np.asarray(spec.ub_rhs), a_eq, np.asarray(spec.eq_rhs)

    @pytest.mark.parametrize("fixed_objective", [None, 2.75])
    def test_constraint_matrices_bit_identical(self, fixed_objective):
        import numpy as np

        from repro.lp.intervals import build_interval_structure
        from repro.lp.maxstretch import _assemble_constraints, build_skeleton
        from repro.lp.solver import LinearProgramBuilder

        problem = self.make_problem()
        probe = 2.75 if fixed_objective is None else fixed_objective
        structure = build_interval_structure(problem, probe)
        skeleton = build_skeleton(problem, structure)
        assert skeleton is not None
        offset = 1 if fixed_objective is None else 0

        vec = LinearProgramBuilder()
        ref = LinearProgramBuilder()
        for builder in (vec, ref):
            if fixed_objective is None:
                builder.add_variable(objective=1.0, lower=1.0, upper=5.0, name="F")
            for _ in range(len(skeleton.keys)):
                builder.add_variable()
        _assemble_constraints(
            vec, problem, skeleton,
            offset=offset,
            f_var=0 if fixed_objective is None else None,
            objective_value=fixed_objective,
        )
        self._reference_assemble(
            ref, problem, skeleton,
            offset=offset,
            f_var=0 if fixed_objective is None else None,
            objective_value=fixed_objective,
        )
        for got, want in zip(self._dense(vec.spec()), self._dense(ref.spec())):
            assert np.array_equal(got, want)  # exact, not approx

    def test_sparsity_pattern_drops_zero_f_coefficients(self):
        """Zero F-column coefficients are filtered exactly like the old loop."""
        import numpy as np

        from repro.lp.intervals import build_interval_structure
        from repro.lp.maxstretch import _assemble_constraints, build_skeleton
        from repro.lp.solver import LinearProgramBuilder

        problem = self.make_problem()
        structure = build_interval_structure(problem, 2.75)
        skeleton = build_skeleton(problem, structure)
        builder = LinearProgramBuilder()
        builder.add_variable(objective=1.0, name="F")
        for _ in range(len(skeleton.keys)):
            builder.add_variable()
        _assemble_constraints(
            builder, problem, skeleton, offset=1, f_var=0, objective_value=None
        )
        spec = builder.spec()
        f_entries = np.asarray(spec.ub_vals)[np.asarray(spec.ub_cols) == 0]
        assert f_entries.size > 0
        assert np.all(f_entries != 0.0)
