"""Unit tests for :mod:`repro.lp.problem`."""

from __future__ import annotations

import pytest

from repro.core.errors import ModelError
from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Machine, Platform
from repro.lp.problem import (
    Affine,
    LPJob,
    MaxStretchProblem,
    Resource,
    build_job_table,
    problem_from_instance,
)


class TestAffine:
    def test_evaluation(self):
        fn = Affine(2.0, 3.0)
        assert fn.at(0.0) == 2.0
        assert fn.at(1.5) == pytest.approx(6.5)

    def test_arithmetic(self):
        a, b = Affine(2.0, 3.0), Affine(1.0, 1.0)
        assert (a - b).at(2.0) == pytest.approx(a.at(2.0) - b.at(2.0))
        assert (a + b).at(2.0) == pytest.approx(a.at(2.0) + b.at(2.0))


class TestResource:
    def test_validation(self):
        with pytest.raises(ModelError):
            Resource(index=0, speed=0.0, machine_ids=(0,))
        with pytest.raises(ModelError):
            Resource(index=0, speed=1.0, machine_ids=())


class TestLPJob:
    def make(self, **overrides):
        defaults = dict(
            job_id=0,
            earliest_start=1.0,
            remaining_work=2.0,
            release=0.5,
            flow_factor=1.5,
            resources=(0,),
        )
        defaults.update(overrides)
        return LPJob(**defaults)

    def test_deadline_formula(self):
        job = self.make()
        assert job.deadline(2.0) == pytest.approx(0.5 + 2.0 * 1.5)
        affine = job.deadline_affine()
        assert affine.const == 0.5 and affine.coef == 1.5
        assert job.start_affine().at(123.0) == 1.0

    def test_validation(self):
        with pytest.raises(ModelError):
            self.make(remaining_work=0.0)
        with pytest.raises(ModelError):
            self.make(flow_factor=0.0)
        with pytest.raises(ModelError):
            self.make(earliest_start=0.0)  # before release
        with pytest.raises(ModelError):
            self.make(resources=())


class TestMaxStretchProblem:
    def make_problem(self) -> MaxStretchProblem:
        resources = (
            Resource(0, speed=2.0, machine_ids=(0, 1)),
            Resource(1, speed=1.0, machine_ids=(2,)),
        )
        jobs = (
            LPJob(0, earliest_start=0.0, remaining_work=4.0, release=0.0,
                  flow_factor=2.0, resources=(0,)),
            LPJob(1, earliest_start=1.0, remaining_work=3.0, release=1.0,
                  flow_factor=1.0, resources=(0, 1)),
        )
        return MaxStretchProblem(resources=resources, jobs=jobs)

    def test_lookups(self):
        problem = self.make_problem()
        assert problem.n_jobs == 2
        assert problem.n_resources == 2
        assert problem.job_by_id(1).remaining_work == 3.0
        with pytest.raises(KeyError):
            problem.job_by_id(9)

    def test_eligible_speed(self):
        problem = self.make_problem()
        assert problem.eligible_speed(problem.job_by_id(0)) == pytest.approx(2.0)
        assert problem.eligible_speed(problem.job_by_id(1)) == pytest.approx(3.0)

    def test_objective_bounds(self):
        problem = self.make_problem()
        lower = problem.objective_lower_bound()
        upper = problem.objective_upper_bound()
        # Job 0 alone needs 4/2 = 2 seconds -> weighted flow 2 / 2.0 = 1.
        # Job 1 alone needs 3/3 = 1 second -> weighted flow 1 / 1.0 = 1.
        assert lower == pytest.approx(1.0)
        assert upper >= lower

    def test_job_by_id_is_cached_map(self):
        problem = self.make_problem()
        first = problem.job_by_id(0)
        # The id -> job map is built once and stashed in the instance dict.
        assert "_by_id" in problem.__dict__
        assert problem.job_by_id(0) is first
        # Caches never leak into dataclass equality.
        assert problem == self.make_problem()

    def test_eligible_speed_memoized_per_resource_tuple(self):
        problem = self.make_problem()
        job0, job1 = problem.jobs
        assert problem.eligible_speed(job0) == pytest.approx(2.0)
        memo = problem.__dict__["_espeed_memo"]
        assert memo == {(0,): 2.0}
        assert problem.eligible_speed(job1) == pytest.approx(3.0)
        assert set(memo) == {(0,), (0, 1)}
        # A foreign LPJob sharing a known resource tuple hits the memo too.
        foreign = LPJob(9, earliest_start=0.0, remaining_work=1.0, release=0.0,
                        flow_factor=1.0, resources=(0, 1))
        assert problem.eligible_speed(foreign) == pytest.approx(3.0)

    def test_cached_arrays_match_job_order(self):
        import numpy as np

        problem = self.make_problem()
        assert np.array_equal(problem.resource_speeds(), [2.0, 1.0])
        assert np.array_equal(problem.remaining_works(), [4.0, 3.0])
        assert problem.resource_speeds() is problem.resource_speeds()  # cached

    def test_resource_index_mismatch_rejected(self):
        with pytest.raises(ModelError):
            MaxStretchProblem(
                resources=(Resource(1, speed=1.0, machine_ids=(0,)),),
                jobs=(),
            )

    def test_unknown_resource_reference_rejected(self):
        with pytest.raises(ModelError):
            MaxStretchProblem(
                resources=(Resource(0, speed=1.0, machine_ids=(0,)),),
                jobs=(
                    LPJob(0, earliest_start=0.0, remaining_work=1.0, release=0.0,
                          flow_factor=1.0, resources=(5,)),
                ),
            )

    def test_empty_problem_bounds(self):
        problem = MaxStretchProblem(resources=(), jobs=())
        assert problem.objective_lower_bound() == 0.0
        assert problem.objective_upper_bound() == 0.0


class TestProblemFromInstance:
    @pytest.fixture
    def instance(self) -> Instance:
        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 0, frozenset({"a"})),
                Machine(2, 0.5, 1, frozenset({"a", "b"})),
            ]
        )
        jobs = [
            Job(0, release=0.0, size=4.0, databank="a"),
            Job(1, release=1.0, size=2.0, databank="b"),
        ]
        return Instance(jobs, platform)

    def test_resources_are_capability_classes(self, instance):
        problem = problem_from_instance(instance)
        assert problem.n_resources == 2
        speeds = sorted(r.speed for r in problem.resources)
        assert speeds == [pytest.approx(2.0), pytest.approx(2.0)]

    def test_offline_jobs_use_release_and_full_size(self, instance):
        problem = problem_from_instance(instance)
        job0 = problem.job_by_id(0)
        assert job0.earliest_start == 0.0
        assert job0.remaining_work == 4.0
        # Stretch flow factor = ideal time = size / eligible speed = 4 / 4 = 1.
        assert job0.flow_factor == pytest.approx(instance.ideal_time(0))

    def test_eligibility_respects_databanks(self, instance):
        problem = problem_from_instance(instance)
        job1 = problem.job_by_id(1)
        eligible_banks = {problem.resources[r].databanks for r in job1.resources}
        assert all("b" in banks for banks in eligible_banks)

    def test_online_remaining_restricts_jobs(self, instance):
        problem = problem_from_instance(instance, now=2.0, remaining={0: 1.5})
        assert problem.n_jobs == 1
        job0 = problem.job_by_id(0)
        assert job0.remaining_work == 1.5
        assert job0.earliest_start == 2.0
        assert job0.release == 0.0  # deadline still anchored at the true release

    def test_completed_jobs_dropped(self, instance):
        problem = problem_from_instance(instance, now=2.0, remaining={0: 0.0, 1: 1.0})
        assert [j.job_id for j in problem.jobs] == [1]

    def test_explicit_job_ids_keep_full_size(self, instance):
        problem = problem_from_instance(instance, job_ids=[0])
        assert problem.n_jobs == 1
        assert problem.job_by_id(0).remaining_work == 4.0

    def test_flow_factor_override(self, instance):
        problem = problem_from_instance(instance, flow_factors={0: 10.0})
        assert problem.job_by_id(0).flow_factor == 10.0


class TestJobTableFastPath:
    @pytest.fixture
    def instance(self) -> Instance:
        platform = Platform(
            [
                Machine(0, 1.0, 0, frozenset({"a"})),
                Machine(1, 1.0, 0, frozenset({"a"})),
                Machine(2, 0.5, 1, frozenset({"a", "b"})),
            ]
        )
        jobs = [
            Job(0, release=0.0, size=4.0, databank="a"),
            Job(1, release=1.0, size=2.0, databank="b"),
            Job(2, release=2.0, size=3.0, databank="a"),
        ]
        return Instance(jobs, platform)

    def test_replan_shape_bit_identical_to_general_path(self, instance):
        from repro.lp.problem import build_eligibility, build_resources

        resources = build_resources(instance)
        eligibility = build_eligibility(instance, resources)
        table = build_job_table(instance, resources, eligibility)
        remaining = {0: 1.5, 1: 2.0, 2: 0.0}  # job 2 completed
        general = problem_from_instance(
            instance, now=2.5, remaining=remaining,
            resources=resources, eligibility=eligibility,
        )
        fast = problem_from_instance(
            instance, now=2.5, remaining=remaining,
            resources=resources, eligibility=eligibility, job_table=table,
        )
        assert fast == general  # dataclass equality: same jobs, same order

    def test_overrides_fall_back_to_general_path(self, instance):
        from repro.lp.problem import build_eligibility, build_resources

        resources = build_resources(instance)
        eligibility = build_eligibility(instance, resources)
        table = build_job_table(instance, resources, eligibility)
        # flow_factors overrides bypass the table (general path handles them).
        problem = problem_from_instance(
            instance, now=0.0, remaining={0: 1.0}, flow_factors={0: 7.0},
            resources=resources, eligibility=eligibility, job_table=table,
        )
        assert problem.job_by_id(0).flow_factor == 7.0

    def test_table_carries_instance_invariants(self, instance):
        table = build_job_table(instance)
        assert [row[0] for row in table.rows] == [0, 1, 2]
        job0 = table.rows[0]
        assert job0[1] == 0.0 and job0[2] == 4.0
        assert job0[3] == pytest.approx(instance.ideal_time(0))
