"""Unit tests for the LP wrapper (:mod:`repro.lp.solver`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import SolverError
from repro.lp.solver import LinearProgramBuilder


class TestLinearProgramBuilder:
    def test_simple_minimization(self):
        # min x + y  s.t.  x + y >= 1, x >= 0, y >= 0
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0)
        y = builder.add_variable(objective=1.0)
        builder.add_leq([(x, -1.0), (y, -1.0)], -1.0)
        result = builder.solve()
        assert result.feasible
        assert result.objective == pytest.approx(1.0)
        assert result.value(x) + result.value(y) == pytest.approx(1.0)

    def test_equality_constraint(self):
        # min x  s.t.  x + y == 3, y <= 1
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0)
        y = builder.add_variable(upper=1.0)
        builder.add_eq([(x, 1.0), (y, 1.0)], 3.0)
        result = builder.solve()
        assert result.feasible
        assert result.value(x) == pytest.approx(2.0)

    def test_infeasible_returns_flag_not_exception(self):
        builder = LinearProgramBuilder()
        x = builder.add_variable(upper=1.0)
        builder.add_eq([(x, 1.0)], 5.0)
        result = builder.solve()
        assert not result.feasible
        assert np.isinf(result.objective)

    def test_unbounded_raises_solver_error(self):
        builder = LinearProgramBuilder()
        builder.add_variable(objective=-1.0)  # min -x with x unbounded above
        with pytest.raises(SolverError):
            builder.solve()

    def test_empty_program_trivially_feasible(self):
        result = LinearProgramBuilder().solve()
        assert result.feasible
        assert result.objective == 0.0

    def test_variable_bounds_respected(self):
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0, lower=2.0, upper=5.0)
        result = builder.solve()
        assert result.value(x) == pytest.approx(2.0)

    def test_unknown_variable_rejected(self):
        builder = LinearProgramBuilder()
        builder.add_variable()
        with pytest.raises(SolverError):
            builder.add_leq([(3, 1.0)], 0.0)

    def test_variable_names(self):
        builder = LinearProgramBuilder()
        idx = builder.add_variable(name="alpha")
        assert builder.variable_name(idx) == "alpha"
        other = builder.add_variable()
        assert builder.variable_name(other) == f"x{other}"
        assert builder.n_variables == 2

    def test_explicit_method_selection(self):
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0, lower=1.0)
        result = builder.solve(method="highs-ipm")
        assert result.feasible
        assert result.value(x) == pytest.approx(1.0, abs=1e-6)

    def test_iteration_limit_retried_with_ipm(self, monkeypatch):
        """scipy status 1 (iteration limit) retries once with highs-ipm."""
        import repro.lp.backends.scipy_backend as scipy_backend_mod

        real_linprog = scipy_backend_mod.linprog
        methods: list[str] = []

        def flaky_linprog(c, **kwargs):
            methods.append(kwargs.get("method"))
            if len(methods) == 1:
                result = real_linprog(c, **kwargs)
                result.status = 1
                result.message = "iteration limit reached (simulated)"
                return result
            return real_linprog(c, **kwargs)

        monkeypatch.setattr(scipy_backend_mod, "linprog", flaky_linprog)
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0, lower=2.0)
        result = builder.solve()
        assert result.feasible
        assert result.value(x) == pytest.approx(2.0, abs=1e-6)
        assert methods == ["highs", "highs-ipm"]

    def test_iteration_limit_twice_raises(self, monkeypatch):
        import repro.lp.backends.scipy_backend as scipy_backend_mod

        real_linprog = scipy_backend_mod.linprog
        calls: list[str] = []

        def always_limited(c, **kwargs):
            calls.append(kwargs.get("method"))
            result = real_linprog(c, **kwargs)
            result.status = 1
            result.message = "iteration limit reached (simulated)"
            return result

        monkeypatch.setattr(scipy_backend_mod, "linprog", always_limited)
        builder = LinearProgramBuilder()
        builder.add_variable(objective=1.0, lower=2.0)
        with pytest.raises(SolverError, match="status 1"):
            builder.solve()
        assert calls == ["highs", "highs-ipm"]

    def test_block_constraints_equal_scalar_constraints(self):
        """The vectorized COO block path builds the same program as scalars."""

        def scalar_builder():
            builder = LinearProgramBuilder()
            x = builder.add_variable(objective=1.0)
            y = builder.add_variable(objective=2.0)
            z = builder.add_variable(objective=0.5)
            builder.add_leq([(x, 1.0), (y, 1.0)], 3.0)
            builder.add_leq([(y, 2.0), (z, -1.0)], 1.0)
            builder.add_eq([(x, 1.0), (z, 1.0)], 2.0)
            return builder

        block = LinearProgramBuilder()
        block.add_variables(3, objective=[1.0, 2.0, 0.5])
        block.add_leq_block(
            rows=np.array([0, 0, 1, 1]),
            cols=np.array([0, 1, 1, 2]),
            vals=np.array([1.0, 1.0, 2.0, -1.0]),
            rhs=np.array([3.0, 1.0]),
        )
        block.add_eq_block(
            rows=np.array([0, 0]),
            cols=np.array([0, 2]),
            vals=np.array([1.0, 1.0]),
            rhs=np.array([2.0]),
        )
        reference = scalar_builder()
        spec_scalar = reference.spec()
        spec_block = block.spec()
        assert spec_block.n_vars == spec_scalar.n_vars
        assert list(spec_block.ub_rhs) == list(spec_scalar.ub_rhs)
        assert list(spec_block.eq_rhs) == list(spec_scalar.eq_rhs)
        result_scalar = reference.solve()
        result_block = block.solve()
        assert result_block.objective == pytest.approx(result_scalar.objective)
        assert np.allclose(result_block.values, result_scalar.values)

    def test_block_and_scalar_rows_interleave(self):
        builder = LinearProgramBuilder()
        x = builder.add_variable(objective=1.0)
        builder.add_leq([(x, -1.0)], -1.0)  # scalar row 0: x >= 1
        builder.add_leq_block(  # block row 1: x <= 5
            rows=np.array([0]), cols=np.array([x]),
            vals=np.array([1.0]), rhs=np.array([5.0]),
        )
        row = builder.add_leq([(x, -1.0)], -2.0)  # scalar row 2: x >= 2
        assert row == 2
        result = builder.solve()
        assert result.feasible
        assert result.value(x) == pytest.approx(2.0)

    def test_block_validation(self):
        builder = LinearProgramBuilder()
        builder.add_variables(2)
        with pytest.raises(SolverError, match="equal lengths"):
            builder.add_leq_block(
                rows=np.array([0]), cols=np.array([0, 1]),
                vals=np.array([1.0]), rhs=np.array([1.0]),
            )
        with pytest.raises(SolverError, match="unknown variable"):
            builder.add_leq_block(
                rows=np.array([0]), cols=np.array([5]),
                vals=np.array([1.0]), rhs=np.array([1.0]),
            )
        with pytest.raises(SolverError, match="row indices"):
            builder.add_eq_block(
                rows=np.array([2]), cols=np.array([0]),
                vals=np.array([1.0]), rhs=np.array([1.0]),
            )

    def test_add_variables_bulk(self):
        builder = LinearProgramBuilder()
        first = builder.add_variables(3, objective=np.array([1.0, 2.0, 3.0]))
        assert first == 0
        assert builder.n_variables == 3
        assert builder.variable_name(1) == "x1"
        with pytest.raises(SolverError, match="coefficients"):
            builder.add_variables(2, objective=[1.0])

    def test_transportation_like_problem(self):
        # Two suppliers (capacities 3 and 2), two demands (2 and 3); cost
        # favours supplier 0 for demand 0 and supplier 1 for demand 1.
        builder = LinearProgramBuilder()
        x = {}
        costs = {(0, 0): 1.0, (0, 1): 3.0, (1, 0): 3.0, (1, 1): 1.0}
        for key, cost in costs.items():
            x[key] = builder.add_variable(objective=cost)
        builder.add_leq([(x[(0, 0)], 1.0), (x[(0, 1)], 1.0)], 3.0)
        builder.add_leq([(x[(1, 0)], 1.0), (x[(1, 1)], 1.0)], 2.0)
        builder.add_eq([(x[(0, 0)], 1.0), (x[(1, 0)], 1.0)], 2.0)
        builder.add_eq([(x[(0, 1)], 1.0), (x[(1, 1)], 1.0)], 3.0)
        result = builder.solve()
        assert result.feasible
        # Optimal: send 2 from s0 to d0 (cost 2), 2 from s1 to d1 (cost 2),
        # remaining 1 of d1 from s0 (cost 3) -> total 7.
        assert result.objective == pytest.approx(7.0)
