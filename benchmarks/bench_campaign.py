"""Campaign engine benchmarks: sharding speedup, backend A/B, merge throughput.

Two enforced properties of :func:`repro.experiments.runner.run_campaign`:

* **Sharding is free of result drift and actually scales.**  The sharded
  mini-campaign must produce a record set bit-identical (order-independent,
  timing measurements excluded) to the serial run -- always enforced -- and
  at ``REPRO_BENCH_WORKERS`` (default 4) workers the wall-clock speedup must
  be >= 2x whenever the machine has that many CPUs (the acceptance target;
  on smaller machines the measurement is still recorded, the gate is
  skipped).
* **The backend A/B equivalence gate.**  The same mini-campaign run with the
  one-shot scipy backend and with the persistent HiGHS backend must agree:
  per-record on the tie-free optimized metric (max_stretch, solver
  tolerance) and on the per-scheduler means of the tie-broken metrics
  (within the documented 10 % -- System (2) degeneracy legitimately
  perturbs individual runs, worst observed ~8 % on Offline at this sample
  size).  This is the campaign-scale evidence behind the
  ``--solver-backend`` default flip from ``scipy`` to ``auto``.

A third gate covers the cross-run solver-state bank
(:func:`bench_state_bank_reuse`): on a slice where every replicate's four
on-line LP variants share the realized instance, the banked leg must cut
the median LP solves per record by >= 25 % while staying bitwise
transparent on scipy, and the sharded bank-on/off comparison on the
default backend must pass the same two-tier tolerance gate as the backend
A/B.

A fourth gate covers the group-batched dispatch of PR 8
(:func:`bench_campaign_throughput`): on a heuristic-heavy mini-campaign
(tiny per-task compute, so dispatch/transport overhead dominates) the
grouped 4-worker run must reach >= 2x the serial records/sec whenever the
machine has the CPUs, with the per-task-dispatch leg recorded alongside so
the dispatch win itself is tracked; record sets must be bit-identical
across all legs on every machine.

A fifth measurement covers the distribution layer: merging N shard
journals of a paper-shaped design (162 configurations x 10 schedulers)
back into one validated record set must stay cheap relative to computing
the records -- the merge job is the serial tail of every sharded CI
campaign, so its records/sec throughput is tracked alongside.

All five write into ``benchmarks/_artifacts/BENCH_campaign.json``
(uploaded by CI) so the campaign throughput trajectory -- wall-clock,
records/sec, worker count, merge rate -- is tracked across PRs.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from dataclasses import replace

import pytest

from repro.experiments.ab import compare_record_sets, run_backend_ab
from repro.experiments.config import ExperimentConfig, paper_configurations
from repro.experiments.io import CampaignCheckpoint
from repro.experiments.merge import merge_journals
from repro.experiments.runner import (
    RunRecord,
    campaign_meta,
    campaign_tasks,
    run_campaign,
)
from repro.experiments.sharding import ShardPlan
from repro.lp.backends import highs_available, resolve_backend_name
from repro.lp.bank import SolverStateBank
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import generate_instance

from _bench_utils import ARTIFACT_DIR, write_json_artifact

_ARTIFACT = "BENCH_campaign.json"

#: Schedulers of the mini-campaign: the LP hot path (on-line variants +
#: off-line optimal) plus list heuristics, so task costs are heterogeneous
#: the way the real Table 1 campaign's are.
_SCHEDULERS = ("online", "online-edf", "offline", "swrpt", "srpt", "mct")


def _scale() -> dict[str, int | float]:
    """Mini-campaign scale knobs (shrunk by CI smoke runs via the env)."""
    return {
        "replicates": int(os.environ.get("REPRO_BENCH_CAMPAIGN_REPLICATES", "5")),
        "max_jobs": int(os.environ.get("REPRO_BENCH_CAMPAIGN_MAX_JOBS", "30")),
        "window": float(os.environ.get("REPRO_BENCH_CAMPAIGN_WINDOW", "60")),
        "workers": int(os.environ.get("REPRO_BENCH_WORKERS", "4")),
    }


def _mini_campaign(scale) -> list[ExperimentConfig]:
    """Three heterogeneous configurations spanning the factorial axes."""
    def mk(name, sites, databanks, availability, density):
        return ExperimentConfig(
            name=name, n_clusters=sites, n_databanks=databanks,
            availability=availability, density=density,
            processors_per_cluster=5, window=scale["window"],
            max_jobs=scale["max_jobs"],
        )

    return [
        mk("bench-low", 2, 2, 0.6, 1.0),
        mk("bench-mid", 3, 3, 0.9, 1.5),
        mk("bench-high", 3, 2, 0.3, 2.0),
    ]


def _update_artifact(section: str, payload: dict) -> None:
    """Merge ``section`` into BENCH_campaign.json (benches run independently)."""
    path = ARTIFACT_DIR / _ARTIFACT
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except json.JSONDecodeError:
            existing = {}
    existing[section] = payload
    write_json_artifact(_ARTIFACT, existing)


def bench_campaign_sharded_speedup(benchmark):
    """Serial vs sharded mini-campaign: bit-identity always, >= 2x on >= 4 CPUs."""
    scale = _scale()
    configs = _mini_campaign(scale)
    workers = int(scale["workers"])

    def run(n_workers: int):
        start = time.perf_counter()
        results = run_campaign(
            configs,
            scheduler_keys=_SCHEDULERS,
            replicates=int(scale["replicates"]),
            base_seed=2006,
            n_workers=n_workers,
        )
        return results, time.perf_counter() - start

    serial, serial_seconds = benchmark.pedantic(
        lambda: run(1), rounds=1, iterations=1
    )
    sharded, sharded_seconds = run(workers)

    identical = sharded.result_set() == serial.result_set()
    speedup = serial_seconds / sharded_seconds if sharded_seconds > 0 else 0.0
    cpu_count = os.cpu_count() or 1
    enforced = cpu_count >= workers
    payload = {
        "n_configs": len(configs),
        "replicates": scale["replicates"],
        "n_schedulers": len(_SCHEDULERS),
        "n_records": len(serial),
        "worker_count": workers,
        "cpu_count": cpu_count,
        "wall_clock_serial_s": round(serial_seconds, 3),
        "records_per_second_serial": round(len(serial) / serial_seconds, 2),
        "bit_identical": identical,
        "speedup_gate_enforced": enforced,
    }
    if enforced:
        payload.update(
            {
                "status": "measured",
                "wall_clock_sharded_s": round(sharded_seconds, 3),
                "records_per_second_sharded": round(len(sharded) / sharded_seconds, 2),
                "speedup": round(speedup, 3),
            }
        )
    else:
        # A starved runner (fewer CPUs than workers) time-slices the shards,
        # so the measured "speedup" is really oversubscription overhead; a
        # sub-1x number in the committed baseline reads as a sharding
        # regression.  Record the run as explicitly skipped instead -- the
        # bit-identity invariant above is still checked and persisted.
        payload["status"] = "skipped (insufficient cpus)"
    _update_artifact("sharded_speedup", payload)

    # The hard invariant holds on any machine: sharding may never change the
    # record set (timing measurements aside).
    assert identical, "sharded campaign record set differs from the serial run"
    assert not any(r.failed for r in serial), "mini-campaign has failed runs"
    if not enforced:
        pytest.skip(
            f"only {cpu_count} CPU(s); the >= 2x speedup gate needs "
            f">= {workers} (measurement recorded in {_ARTIFACT})"
        )
    assert speedup >= 2.0, (
        f"campaign sharding at {workers} workers only {speedup:.2f}x faster "
        f"({serial_seconds:.1f}s -> {sharded_seconds:.1f}s; target >= 2x)"
    )


def bench_campaign_backend_ab(benchmark):
    """The equivalence gate behind the ``--solver-backend auto`` default."""
    scale = _scale()
    configs = _mini_campaign(scale)

    report, results_a, _ = benchmark.pedantic(
        lambda: run_backend_ab(
            configs,
            scheduler_keys=_SCHEDULERS,
            replicates=int(scale["replicates"]),
            base_seed=2006,
            n_workers=int(scale["workers"]),
        ),
        rounds=1,
        iterations=1,
    )
    _update_artifact(
        "backend_ab",
        {
            "backend_a": report.backend_a,
            "backend_b": report.backend_b,
            "highs_available": highs_available(),
            "n_records": report.n_records,
            "n_identical": report.n_identical,
            "objective_tolerance": report.objective_tolerance,
            "tie_tolerance": report.tie_tolerance,
            "max_rel_diff_per_record": {
                metric: round(diff, 9)
                for metric, diff in sorted(report.max_rel_diff.items())
            },
            "worst_aggregate_diff": {
                metric: {
                    "scheduler": report.worst_aggregate_diff(metric)[0],
                    "rel_diff": round(report.worst_aggregate_diff(metric)[1], 9),
                }
                for metric in sorted({m for _, m in report.aggregate_diffs})
            },
            "equivalent": report.equivalent,
        },
    )
    assert report.n_records == len(results_a) > 0
    assert report.equivalent, f"backend A/B gate failed:\n{report.render()}"
    if not highs_available():
        pytest.skip(
            "no HiGHS bindings; A/B degenerated to scipy-vs-scipy "
            f"(recorded in {_ARTIFACT})"
        )
    assert report.backend_b == resolve_backend_name("auto") == "highs"


def bench_state_bank_reuse(benchmark):
    """The reuse gate behind the ``--state-bank on`` default.

    A paper-shaped slice where the bank's affinity assumption is exact --
    the four on-line LP variants of every (configuration, replicate) group
    share each realized instance -- run once with a per-group
    :class:`SolverStateBank` and once cold, serially on the scipy backend
    (so per-record LP-solve counts are deterministic and the banked answers
    are bitwise transparent).  Gates, in order:

    * the banked leg must cut the median LP solves per record by >= 25 %,
    * every record must be bitwise identical to its cold twin,
    * a sharded bank-on campaign on the *default* backend must pass the
      same two-tier tolerance gate as the backend A/B when compared to the
      bank-off run (warm HiGHS bases legitimately shift results at solver
      tolerance).
    """
    scale = _scale()
    keys = ("online", "online-edf", "online-egdf", "online-nonopt")
    configs = [
        replace(config, solver_backend="scipy")
        for config in _mini_campaign(scale)
    ]
    tasks = campaign_tasks(configs, keys, int(scale["replicates"]), base_seed=2006)

    def run_serial(with_bank: bool):
        """(per-record LP-solve counts, objective tuples, bank hit stats)."""
        probes, objectives = [], []
        hits = misses = 0
        instances: dict[tuple[str, int], object] = {}
        banks: dict[tuple[str, int], SolverStateBank] = {}
        for task in tasks:
            group = (task.config.name, task.replicate)
            if group not in instances:
                instances[group] = generate_instance(
                    task.config.platform_spec(), task.config.workload_spec(),
                    rng=task.seed,
                )
            options = task.config.scheduler_options_for(task.scheduler_key)
            if with_bank:
                options["state_bank"] = banks.setdefault(group, SolverStateBank())
            else:
                options["state_bank"] = None
            result = simulate(
                instances[group], make_scheduler(task.scheduler_key, **options)
            )
            probes.append(result.lp_probes.n_probes)
            hits += result.lp_probes.n_bank_hits
            misses += result.lp_probes.n_bank_misses
            objectives.append(
                (task.triple, result.max_stretch, result.sum_stretch,
                 result.makespan)
            )
        return probes, objectives, hits, misses

    start = time.perf_counter()
    banked_probes, banked_objectives, hits, misses = benchmark.pedantic(
        lambda: run_serial(True), rounds=1, iterations=1
    )
    banked_seconds = time.perf_counter() - start
    start = time.perf_counter()
    cold_probes, cold_objectives, _, _ = run_serial(False)
    cold_seconds = time.perf_counter() - start

    median_banked = statistics.median(banked_probes)
    median_cold = statistics.median(cold_probes)
    reduction = 1.0 - median_banked / median_cold if median_cold else 0.0
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    # Tolerance gate on the shipping default backend, sharded bank-on vs
    # bank-off, over the standard mini-campaign schedulers (the surface
    # ``campaign --state-bank`` actually exposes).  ``online-nonopt`` stays
    # out of this leg on purpose: it materializes the System (1) allocation
    # directly, so a banked-vs-cold HiGHS vertex shifts its tie metrics the
    # most -- at mini-campaign sample counts that wobble can exceed the
    # per-scheduler tie tolerance without any objective drift (the bitwise
    # scipy assertion above already proves the bank exact for it).
    ab_configs = _mini_campaign(scale)
    campaign_kwargs = dict(
        scheduler_keys=_SCHEDULERS, replicates=int(scale["replicates"]),
        base_seed=2006, n_workers=int(scale["workers"]),
    )
    bank_on = run_campaign(ab_configs, **campaign_kwargs)
    bank_off = run_campaign(
        [replace(c, state_bank=False) for c in ab_configs], **campaign_kwargs
    )
    report = compare_record_sets(
        bank_on, bank_off, backend_a="bank-on", backend_b="bank-off"
    )

    _update_artifact(
        "state_bank_reuse",
        {
            "n_records": len(tasks),
            "replicates": scale["replicates"],
            "schedulers": list(keys),
            "median_lp_solves_banked": median_banked,
            "median_lp_solves_cold": median_cold,
            "total_lp_solves_banked": sum(banked_probes),
            "total_lp_solves_cold": sum(cold_probes),
            "median_reduction": round(reduction, 3),
            "bank_hit_rate": round(hit_rate, 3),
            "wall_clock_banked_s": round(banked_seconds, 3),
            "wall_clock_cold_s": round(cold_seconds, 3),
            "bank_on_off_equivalent": report.equivalent,
        },
    )

    assert banked_objectives == cold_objectives, (
        "banked scipy records must be bitwise identical to the cold run"
    )
    assert reduction >= 0.25, (
        f"state bank only cut median LP solves per record by "
        f"{reduction:.0%} ({median_cold} -> {median_banked}; target >= 25%)"
    )
    assert report.equivalent, (
        f"bank-on/off A/B gate failed:\n{report.render()}"
    )


#: Schedulers of the throughput mini-campaign: heuristic-only (no LP), so
#: per-task compute is tiny and dispatch/transport overhead dominates -- the
#: regime the group-batched dispatch is built for.
_HEURISTIC_SCHEDULERS = (
    "fcfs", "srpt", "spt", "swpt", "swrpt", "mct", "mct-div", "bender02",
)


def bench_campaign_throughput(benchmark):
    """End-to-end records/sec: serial vs group-batched dispatch at 4 workers.

    A heuristic-heavy mini-campaign (cheap per-task compute, many tasks)
    run three ways:

    * serially (the single-process baseline; compute per record is
      unchanged since PR 7, so this doubles as the PR-7 throughput
      reference),
    * at ``REPRO_BENCH_WORKERS`` workers with the historical per-task
      dispatch (``dispatch="task"`` -- one pool round-trip per record),
    * at the same worker count with group-batched dispatch (one round-trip,
      one packed payload per (configuration, replicate) group -- the PR-8
      default).

    Bit-identity across all three legs is asserted on every machine.  The
    >= 2x grouped-vs-serial records/sec gate is enforced whenever the
    machine actually has the CPUs; on starved runners the measurement is
    recorded as explicitly skipped (a time-sliced "speedup" would read as a
    throughput regression in the committed baseline).  The per-task leg is
    recorded alongside so the dispatch win itself (grouped vs per-task at
    equal parallelism) is tracked across PRs.
    """
    scale = _scale()
    # 8 replicates x 3 configs = 24 (config, replicate) groups: divisible by
    # the default 4 lanes, so the grouped leg is load-balanced and the >= 2x
    # gate is not fighting a straggler lane.
    replicates = int(
        os.environ.get("REPRO_BENCH_THROUGHPUT_REPLICATES", "8")
    )
    throughput_scale = {
        "window": float(os.environ.get("REPRO_BENCH_THROUGHPUT_WINDOW", "20")),
        "max_jobs": int(os.environ.get("REPRO_BENCH_THROUGHPUT_MAX_JOBS", "10")),
    }
    configs = _mini_campaign(throughput_scale)
    workers = int(scale["workers"])

    def run(n_workers: int, dispatch: str):
        start = time.perf_counter()
        results = run_campaign(
            configs,
            scheduler_keys=_HEURISTIC_SCHEDULERS,
            replicates=replicates,
            base_seed=2006,
            n_workers=n_workers,
            dispatch=dispatch,
        )
        return results, time.perf_counter() - start

    serial, serial_seconds = benchmark.pedantic(
        lambda: run(1, "group"), rounds=1, iterations=1
    )
    per_task, per_task_seconds = run(workers, "task")
    grouped, grouped_seconds = run(workers, "group")

    reference = serial.result_set()
    identical = (
        per_task.result_set() == reference
        and grouped.result_set() == reference
    )
    n_records = len(serial)
    serial_rps = n_records / serial_seconds if serial_seconds > 0 else 0.0
    per_task_rps = n_records / per_task_seconds if per_task_seconds > 0 else 0.0
    grouped_rps = n_records / grouped_seconds if grouped_seconds > 0 else 0.0
    cpu_count = os.cpu_count() or 1
    enforced = cpu_count >= workers
    payload = {
        "n_configs": len(configs),
        "replicates": replicates,
        "n_schedulers": len(_HEURISTIC_SCHEDULERS),
        "n_records": n_records,
        "worker_count": workers,
        "cpu_count": cpu_count,
        "wall_clock_serial_s": round(serial_seconds, 3),
        "records_per_second_serial": round(serial_rps, 1),
        "stage_seconds_grouped": {
            stage: round(seconds, 4)
            for stage, seconds in sorted(grouped.stage_seconds.items())
        },
        "bit_identical": identical,
        "throughput_gate_enforced": enforced,
    }
    if enforced:
        payload.update(
            {
                "status": "measured",
                "wall_clock_per_task_s": round(per_task_seconds, 3),
                "records_per_second_per_task": round(per_task_rps, 1),
                "wall_clock_grouped_s": round(grouped_seconds, 3),
                "records_per_second_grouped": round(grouped_rps, 1),
                "grouped_vs_serial": round(grouped_rps / serial_rps, 3)
                if serial_rps > 0
                else 0.0,
                "grouped_vs_per_task": round(grouped_rps / per_task_rps, 3)
                if per_task_rps > 0
                else 0.0,
            }
        )
    else:
        payload["status"] = "skipped (insufficient cpus)"
    _update_artifact("campaign_throughput", payload)

    # The hard invariant holds on any machine: neither the worker count nor
    # the dispatch granularity may change the record set.
    assert identical, (
        "group-batched dispatch changed the campaign record set"
    )
    assert not any(r.failed for r in serial), "mini-campaign has failed runs"
    if not enforced:
        pytest.skip(
            f"only {cpu_count} CPU(s); the >= 2x throughput gate needs "
            f">= {workers} (measurement recorded in {_ARTIFACT})"
        )
    assert grouped_rps >= 2.0 * serial_rps, (
        f"group-batched dispatch at {workers} workers reached only "
        f"{grouped_rps:.0f} records/s vs {serial_rps:.0f} serial "
        f"({grouped_rps / serial_rps:.2f}x; target >= 2x)"
    )


def bench_campaign_merge_throughput(benchmark, tmp_path):
    """Merge rate (records/sec) over N shard journals of a paper-shaped design.

    The records are synthesized (deterministic metric values, no
    simulation): the quantity under test is the distribution layer --
    journal parsing, slice validation, exactly-once accounting -- not the
    schedulers.  The design mirrors the real campaign's shape: the full 162
    configurations x 10 schedulers, with a replicate count scaled by
    ``REPRO_BENCH_MERGE_REPLICATES`` (default 5, i.e. ~8 100 records).
    """
    n_shards = int(os.environ.get("REPRO_BENCH_MERGE_SHARDS", "6"))
    replicates = int(os.environ.get("REPRO_BENCH_MERGE_REPLICATES", "5"))
    configs = paper_configurations(window=20.0, max_jobs=10)
    keys = ("offline", "online", "online-edf", "online-egdf", "swrpt",
            "srpt", "spt", "bender02", "mct-div", "mct")
    tasks = campaign_tasks(configs, keys, replicates, base_seed=2006)
    meta = campaign_meta(configs, keys, replicates, base_seed=2006)

    def synthetic_record(task, position):
        value = 1.0 + (position % 977) / 977.0
        return RunRecord(
            config=task.config.name, replicate=task.replicate,
            scheduler=task.scheduler_key, n_jobs=10,
            n_clusters=task.config.n_clusters,
            n_databanks=task.config.n_databanks,
            availability=task.config.availability,
            density=task.config.density,
            max_stretch=value, sum_stretch=value * 3, max_flow=value * 5,
            sum_flow=value * 7, makespan=value * 11,
            scheduler_time=0.0,
        )

    positions = {task.triple: i for i, task in enumerate(tasks)}
    journals = []
    for plan in ShardPlan(1, n_shards).siblings():
        path = tmp_path / f"shard-{plan.index}.jsonl"
        shard_meta = dict(meta)
        shard_meta["shard"] = plan.meta_entry()
        with CampaignCheckpoint(path) as ckpt:
            ckpt.open_append(shard_meta)
            for task in plan.select(tasks):
                ckpt.append(
                    task.scheduler_key,
                    synthetic_record(task, positions[task.triple]),
                )
        journals.append(path)

    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: merge_journals(journals), rounds=1, iterations=1
    )
    merge_seconds = time.perf_counter() - start

    assert report.complete, "synthetic shard journals must cover the design"
    assert len(report.results) == len(tasks)
    records_per_second = len(tasks) / merge_seconds if merge_seconds > 0 else 0.0
    _update_artifact(
        "merge_throughput",
        {
            "n_shards": n_shards,
            "n_configs": len(configs),
            "n_schedulers": len(keys),
            "replicates": replicates,
            "n_records": len(tasks),
            "wall_clock_merge_s": round(merge_seconds, 3),
            "records_per_second": round(records_per_second, 1),
        },
    )
    # A soft floor only: the merge is pure parsing/accounting and should
    # outpace record *computation* by orders of magnitude even on slow CI.
    assert records_per_second > 100, (
        f"journal merge unexpectedly slow: {records_per_second:.0f} records/s"
    )
