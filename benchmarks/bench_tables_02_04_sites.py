"""Tables 2-4 -- statistics partitioned by platform size (3 / 10 / 20 sites).

In the paper the ordering of the heuristics is stable across platform sizes;
MCT degrades sharply as the platform grows (mean max-stretch degradation 10.3
on 3 sites, 25.1 on 10 sites, 45.6 on 20 sites) because more capacity makes
the optimal stretch smaller while MCT's non-preemptive mistakes stay.
"""

from __future__ import annotations

from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import tables_by_sites

from _bench_utils import write_artifact


def bench_tables_by_sites(benchmark, campaign_results):
    tables = benchmark.pedantic(
        lambda: tables_by_sites(campaign_results), rounds=1, iterations=1
    )
    rendered = "\n\n".join(table.render() for table in tables.values())
    write_artifact("tables_02_04_sites.txt", rendered)
    assert set(tables) == {3, 10, 20}

    # Within every platform size, the LP-based heuristics stay near-optimal for
    # max-stretch and a greedy MCT variant is the worst strategy; MCT itself is
    # the overall worst on the largest platform (the paper's Table 4 trend),
    # where its degradation dwarfs its 3-site value.
    mct_means = {}
    for n_sites in tables:
        subset = campaign_results.by_sites(n_sites)
        rows = {r.scheduler: r for r in summarize(compute_degradations(subset))}
        assert rows["Online"].max_stretch_mean <= 1.2
        worst = max(rows.values(), key=lambda r: r.max_stretch_mean).scheduler
        assert worst in ("MCT", "MCT-Div")
        mct_means[n_sites] = rows["MCT"].max_stretch_mean
    largest = max(tables)
    assert mct_means[largest] == max(mct_means.values())
    assert mct_means[largest] > 2.0 * mct_means[min(tables)]
