"""Tables 11-13 -- statistics partitioned by number of reference databanks (3/10/20).

Paper trend: more distinct databanks means less sharing between request
streams and slightly larger degradations for the greedy strategies (MCT-Div
3.3 -> 7.1 -> 8.6 mean max-stretch degradation), while the LP-based on-line
heuristics stay within a fraction of a percent of the optimal everywhere.
"""

from __future__ import annotations

from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import tables_by_databases

from _bench_utils import write_artifact


def bench_tables_by_databases(benchmark, campaign_results):
    tables = benchmark.pedantic(
        lambda: tables_by_databases(campaign_results), rounds=1, iterations=1
    )
    rendered = "\n\n".join(table.render() for table in tables.values())
    write_artifact("tables_11_13_databases.txt", rendered)
    assert len(tables) >= 2

    for n_databanks in tables:
        subset = campaign_results.by_databases(n_databanks)
        rows = {r.scheduler: r for r in summarize(compute_degradations(subset))}
        assert rows["Offline"].max_stretch_mean <= 1.05
        assert rows["Online"].max_stretch_mean <= 1.2
        worst = max(rows.values(), key=lambda r: r.max_stretch_mean).scheduler
        assert worst in ("MCT", "MCT-Div")
        # Sum-stretch champion stays in the SWRPT/SRPT/EGDF family.
        best_sum = min(r.sum_stretch_mean for r in rows.values())
        assert min(
            rows["SWRPT"].sum_stretch_mean,
            rows["SRPT"].sum_stretch_mean,
            rows["Online-EGDF"].sum_stretch_mean,
        ) <= 1.05 * best_sum
