"""Table 1 -- aggregate max-stretch / sum-stretch statistics over all configurations.

Paper reference values (162 configurations x 200 instances):

==============  ==================  ==================
Heuristic       Max-stretch mean    Sum-stretch mean
==============  ==================  ==================
Offline         1.0000              1.6729
Online          1.0025              1.0806
Online-EDF      1.0024              1.0775
Online-EGDF     1.0781              1.0021
SWRPT           1.0845              1.0002
SRPT            1.0939              1.0044
SPT             1.1147              1.0027
Bender02        3.4603              1.2053
MCT-Div         6.3385              1.3732
MCT             27.0124             50.9840
==============  ==================  ==================

This benchmark regenerates the table on the scaled-down campaign (see
``benchmarks/conftest.py``), writes it to ``benchmarks/_artifacts/`` and
asserts the qualitative ordering the paper emphasizes.
"""

from __future__ import annotations

from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import table1

from _bench_utils import write_artifact


def bench_table1_aggregate(benchmark, campaign_results):
    def build():
        return table1(campaign_results)

    table = benchmark.pedantic(build, rounds=1, iterations=1)
    rendered = table.render()
    write_artifact("table01_aggregate.txt", rendered)

    rows = {row.scheduler: row for row in summarize(compute_degradations(campaign_results))}
    # Offline is the max-stretch reference; the LP-based on-line heuristics stay
    # within a few percent of it.
    assert rows["Offline"].max_stretch_mean <= 1.02
    assert rows["Online"].max_stretch_mean <= 1.15
    assert rows["Online-EDF"].max_stretch_mean <= 1.15
    # MCT is by far the worst strategy for max-stretch.
    assert rows["MCT"].max_stretch_mean == max(r.max_stretch_mean for r in rows.values())
    assert rows["MCT"].max_stretch_mean > 2.0
    # The sum-stretch is dominated by the SWRPT/SRPT/EGDF family, while the
    # pure max-stretch optimizer pays a visible sum-stretch premium.
    best_sum = min(r.sum_stretch_mean for r in rows.values())
    assert rows["SWRPT"].sum_stretch_mean <= 1.1 * best_sum
    assert rows["Online-EGDF"].sum_stretch_mean <= 1.1 * best_sum
    assert rows["Offline"].sum_stretch_mean >= rows["Online"].sum_stretch_mean
