"""Figure 1 / Lemma 1 ablation -- cost and fidelity of the model equivalence.

Checks, on random uniform instances, that the uniform-divisible platform and
its equivalent uniprocessor produce identical completion times for the
priority heuristics, and measures the cost of the two Lemma 1
transformations (forward projection and reverse lifting) relative to the
simulation itself.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.instance import Instance
from repro.core.job import Job
from repro.core.platform import Platform
from repro.core.transform import (
    divisible_schedule_to_uniprocessor,
    equivalent_uniprocessor_instance,
    uniprocessor_schedule_to_divisible,
)
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate

from _bench_utils import bench_scale as _bench_scale


def _uniform_instance(n_jobs: int, seed: int = 21) -> Instance:
    rng = np.random.default_rng(seed)
    platform = Platform.uniform(list(rng.uniform(0.2, 1.5, size=5)), databanks=["db"])
    jobs = []
    t = 0.0
    for i in range(n_jobs):
        t += float(rng.exponential(0.4))
        jobs.append(Job(i, release=t, size=float(rng.uniform(1.0, 20.0)), databank="db"))
    return Instance(jobs, platform)


def bench_lemma1_round_trip(benchmark):
    scale = _bench_scale()
    instance = _uniform_instance(max(20, int(scale["max_jobs"])))
    multi = simulate(instance, make_scheduler("swrpt"))
    equivalent = equivalent_uniprocessor_instance(instance)

    def round_trip():
        projected = divisible_schedule_to_uniprocessor(multi.schedule, instance)
        lifted = uniprocessor_schedule_to_divisible(projected, instance)
        return projected, lifted

    projected, lifted = benchmark(round_trip)
    # Lemma 1: projection never increases completion times; lifting is lossless.
    for job in instance.jobs:
        assert projected.completion_time(job.job_id) <= multi.completions[job.job_id] + 1e-6
        assert lifted.completion_time(job.job_id) == pytest.approx(
            projected.completion_time(job.job_id), rel=1e-9
        )
    assert projected.violations(equivalent) == []
    assert lifted.violations(instance) == []


def bench_equivalence_of_heuristics(benchmark):
    scale = _bench_scale()
    instance = _uniform_instance(max(20, int(scale["max_jobs"])), seed=33)
    equivalent = equivalent_uniprocessor_instance(instance)

    def run_both():
        multi = simulate(instance, make_scheduler("srpt"))
        uni = simulate(equivalent, make_scheduler("srpt"))
        return multi, uni

    multi, uni = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for job in instance.jobs:
        assert multi.completions[job.job_id] == pytest.approx(
            uni.completions[job.job_id], rel=1e-6
        )
