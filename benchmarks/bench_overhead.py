"""Section 5.3 -- scheduling-overhead comparison.

The paper reports, for 15-minute workloads on 3-cluster platforms, the time
spent inside the scheduler: under 0.28 s for the on-line heuristics, 0.54 s
for the off-line optimal algorithm, 0.23 s for Bender02 and 19.76 s for
Bender98 (which re-solves a full off-line optimal problem at every release
date).  Absolute values differ here (pure Python + scipy vs the authors' C
code) but the ordering -- list heuristics < Bender02 < on-line LP heuristics
~ off-line < Bender98 -- is reproduced, as is the reason for restricting
Bender98 to the smallest platforms.

This file also benchmarks one full simulation per strategy on a fixed
3-cluster instance, which is the per-strategy cost a user of the library
actually pays.
"""

from __future__ import annotations

from repro.experiments.overhead import OVERHEAD_TABLE_HEADERS, scheduling_overhead
from repro.lp import kernels
from repro.lp.backends import record_lp_probes
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.utils.textable import TextTable
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

from _bench_utils import update_json_artifact, write_artifact
from _bench_utils import bench_scale as _bench_scale


def bench_scheduling_overhead_comparison(benchmark):
    scale = _bench_scale()

    def run():
        return scheduling_overhead(
            scheduler_keys=("online", "online-edf", "online-egdf", "offline",
                            "bender02", "swrpt", "bender98"),
            scheduler_options={"bender98": {"max_jobs_per_resolution": 20}},
            n_clusters=3,
            n_databanks=3,
            availability=0.6,
            density=1.0,
            window=float(scale["window"]),
            max_jobs=int(scale["max_jobs"]),
            replicates=max(1, int(scale["replicates"])),
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(headers=list(OVERHEAD_TABLE_HEADERS), float_format=".4f")
    for record in records:
        table.add_row(record.cells())
    write_artifact("overhead_section53.txt", table.render())

    by_name = {r.scheduler: r for r in records}
    # Ordering of the paper: the list heuristic is the cheapest, Bender98 the
    # most expensive, and the LP-based strategies sit in between.
    assert by_name["SWRPT"].mean_scheduler_time <= by_name["Online"].mean_scheduler_time
    assert by_name["Bender98"].mean_scheduler_time >= by_name["Online"].mean_scheduler_time
    assert by_name["Bender98"].mean_scheduler_time >= by_name["Offline"].mean_scheduler_time
    assert by_name["Bender02"].mean_scheduler_time <= by_name["Bender98"].mean_scheduler_time


def _fixed_instance():
    scale = _bench_scale()
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(
        density=1.0, window=float(scale["window"]), max_jobs=int(scale["max_jobs"])
    )
    return generate_instance(platform_spec, workload_spec, rng=53)


def bench_incremental_replanning_speedup(benchmark):
    """Incremental ReplanContext vs from-scratch LP replanning.

    Runs the Online heuristic twice on a dense >= 50-job workload (the regime
    where replanning cost dominates, cf. Section 5.3): once rebuilding every
    LP from scratch at each release date, once with the warm-started
    ReplanContext.  The acceptance claim is a >= 2x reduction in total
    scheduler cost with *identical* completion times and S* objectives; the
    workload is fixed (not scaled by the REPRO_BENCH knobs) because it
    validates that claim.  The enforced 2x gate is on the deterministic LP
    probe count (measured wall-clock speedup, ~2.5x locally, is recorded in
    the artifact and only sanity-checked, so a noisy CI runner cannot flake
    the build).
    """
    import repro.lp.maxstretch as maxstretch_module

    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=3.0, window=45.0, max_jobs=60)
    instance = generate_instance(platform_spec, workload_spec, rng=11)
    assert instance.n_jobs >= 50

    probes = {"n": 0}
    original_solve = maxstretch_module.solve_on_objective_range

    def counting_solve(*args, **kwargs):
        probes["n"] += 1
        return original_solve(*args, **kwargs)

    def run_both():
        maxstretch_module.solve_on_objective_range = counting_solve
        try:
            probes["n"] = 0
            scratch_sched = make_scheduler("online", incremental=False)
            scratch = simulate(instance, scratch_sched)
            scratch_probes = probes["n"]
            probes["n"] = 0
            incremental_sched = make_scheduler("online", incremental=True)
            incremental = simulate(instance, incremental_sched)
            incremental_probes = probes["n"]
        finally:
            maxstretch_module.solve_on_objective_range = original_solve
        return (scratch, scratch_sched, scratch_probes,
                incremental, incremental_sched, incremental_probes)

    (scratch, scratch_sched, scratch_probes,
     incremental, incremental_sched, incremental_probes) = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # Identical results ...
    assert incremental_sched.last_objective == scratch_sched.last_objective
    for job_id, completion in scratch.completions.items():
        assert abs(incremental.completions[job_id] - completion) <= 1e-6
    # ... at least 2x cheaper on the scheduler side.
    speedup = scratch.scheduler_time / incremental.scheduler_time
    probe_ratio = scratch_probes / incremental_probes
    write_artifact(
        "incremental_replanning.txt",
        f"workload: {instance.n_jobs} jobs, rho=3.0, 3 clusters\n"
        f"from-scratch: {scratch.scheduler_time:.3f} s, {scratch_probes} LP probes\n"
        f"incremental:  {incremental.scheduler_time:.3f} s, {incremental_probes} LP probes\n"
        f"wall-clock speedup: {speedup:.2f}x, probe reduction: {probe_ratio:.2f}x\n",
    )
    assert probe_ratio >= 2.0, f"only {probe_ratio:.2f}x fewer LP probes"
    assert speedup >= 1.5, f"incremental replanning only {speedup:.2f}x faster"


def bench_lp_solve_fraction(benchmark):
    """LP-solve share of the Online heuristic's scheduler wall-clock.

    The ROADMAP claim motivating the persistent-solver backend layer -- the
    LP solve is the scheduling floor, ~60 % of scheduler time -- is
    regression-checked here instead of staying anecdotal: the probe timing
    hooks of :mod:`repro.lp.backends` measure the pure solver time (model
    build + factorization + simplex) inside a full dense-workload run.  The
    enforced floor is deliberately below the observed ~70 % so a noisy
    runner cannot flake the build; the measured fraction and the per-probe
    cost land in the artifact for trend tracking.
    """
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=3.0, window=45.0, max_jobs=60)
    instance = generate_instance(platform_spec, workload_spec, rng=11)

    def run():
        with record_lp_probes() as stats:
            result = simulate(instance, make_scheduler("online"))
        return result, stats

    result, stats = benchmark.pedantic(run, rounds=1, iterations=1)
    fraction = stats.fraction_of(result.scheduler_time)
    write_artifact(
        "lp_fraction.txt",
        f"workload: {instance.n_jobs} jobs, rho=3.0, 3 clusters (Online, scipy backend)\n"
        f"scheduler time: {result.scheduler_time:.3f} s\n"
        f"LP solve time:  {stats.solve_seconds:.3f} s over {stats.n_probes} probes "
        f"({stats.per_probe_seconds * 1e3:.2f} ms/probe)\n"
        f"LP fraction of scheduler time: {fraction:.1%}\n",
    )
    assert stats.n_probes > 0
    assert fraction >= 0.35, (
        f"LP solve is only {fraction:.1%} of scheduler time; the 'LP is the "
        f"floor' premise of the backend layer no longer holds"
    )


#: Timing rounds per replan-latency leg; the best round (by p50) is kept,
#: which symmetrically discards transient noise on shared CI runners
#: without biasing the tier or speculation comparisons.
_LATENCY_ROUNDS = 2

#: Extra seeds of the 60-job configuration forming the mini-campaign over
#: which the speculation hit rate is measured (rng=11 is the timing fixture).
_HIT_RATE_SEEDS = (11, 12, 13)


def bench_replan_latency(benchmark):
    """Arrival-to-plan replan latency: compiled kernels + speculative pre-solves.

    The sub-millisecond-replans acceptance gate.  On the dense 60-job
    workload (the regime where the ROADMAP identifies the replan as the
    on-line scheduling floor) the Online heuristic runs three times:

    * ``legacy`` kernel tier, speculation off -- the pre-PR baseline: the
      verbatim pure-python milestone/interval/scatter paths;
    * active kernel tier (numpy, or numba under ``pip install .[jit]``),
      speculation off -- must stay within 10 % of the legacy baseline, so
      the array-programmed fallback can never regress the historical path;
    * active kernel tier, speculation on -- idle-gap pre-solves must cut
      the p50 replan wall-clock (arrival to refreshed plan, measured by the
      ``note_replan`` hook) by >= 30 %; ~70 % is the locally observed
      margin, since a speculation hit re-binds a memoized LP solution
      instead of solving on the latency path.

    Completions and S* are asserted bit-identical across all three legs
    (the kernel-tier and speculation invariants), the speculation hit rate
    is measured over a 3-seed mini-campaign of the same configuration, and
    the whole payload lands in ``BENCH_lp.json`` (uploaded by CI).
    """
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=3.0, window=45.0, max_jobs=60)
    instance = generate_instance(platform_spec, workload_spec, rng=11)
    assert instance.n_jobs >= 50

    def measure(tier: str, speculate: bool):
        """Best-of-N timed runs of one (kernel tier, speculation) leg."""
        previous = kernels.set_active_tier(tier)
        try:
            best = None
            for _ in range(_LATENCY_ROUNDS):
                scheduler = make_scheduler("online", speculate=speculate)
                with record_lp_probes() as stats:
                    result = simulate(instance, scheduler)
                assert stats.replan_latencies, "no replans recorded"
                candidate = (result, scheduler.last_objective, stats)
                if best is None or (
                    stats.replan_percentile(50) < best[2].replan_percentile(50)
                ):
                    best = candidate
        finally:
            kernels.set_active_tier(previous)
        return best

    def run():
        return (
            measure("legacy", False),
            measure(kernels.active_tier(), False),
            measure(kernels.active_tier(), True),
        )

    legacy, active, speculative = benchmark.pedantic(run, rounds=1, iterations=1)

    # Hard gate 1: all three legs are bit-identical -- the kernel tiers are
    # exact reimplementations and a speculation hit re-binds the exact
    # optimum of the same LP (a miss is discarded).
    for result, objective, _stats in (active, speculative):
        assert objective == legacy[1]
        assert result.completions == legacy[0].completions

    p50 = {
        "legacy": legacy[2].replan_percentile(50),
        "kernels": active[2].replan_percentile(50),
        "kernels+speculation": speculative[2].replan_percentile(50),
    }
    reduction = 1.0 - p50["kernels+speculation"] / p50["legacy"]

    # The speculation hit rate over the mini-campaign (3 seeds of the same
    # dense configuration; the on-arrival policy predicts every replan after
    # the first, so the expected rate is 1.0).
    hits = misses = 0
    hit_rates = {}
    for seed in _HIT_RATE_SEEDS:
        campaign_instance = generate_instance(platform_spec, workload_spec, rng=seed)
        with record_lp_probes() as stats:
            simulate(campaign_instance, make_scheduler("online", speculate=True))
        hits += stats.n_spec_hits
        misses += stats.n_spec_misses
        hit_rates[str(seed)] = stats.speculation_hit_rate
    hit_rate = hits / (hits + misses) if hits + misses else 0.0

    update_json_artifact(
        "BENCH_lp.json",
        "replan_latency",
        {
            "benchmark": "bench_replan_latency",
            "n_jobs": instance.n_jobs,
            "n_replans": len(legacy[2].replan_latencies),
            "kernel_tier": kernels.active_tier(),
            "timing_rounds": _LATENCY_ROUNDS,
            "p50_replan_seconds": p50,
            "p95_replan_seconds": {
                "legacy": legacy[2].replan_percentile(95),
                "kernels": active[2].replan_percentile(95),
                "kernels+speculation": speculative[2].replan_percentile(95),
            },
            "p50_reduction_vs_legacy": reduction,
            "speculation_hit_rate": {
                "mini_campaign": hit_rate,
                "per_seed": hit_rates,
                "hits": hits,
                "misses": misses,
            },
        },
    )

    # Hard gate 2: the array-programmed kernel tier never regresses the
    # pre-PR pure-python baseline by more than 10 %.
    assert p50["kernels"] <= 1.10 * p50["legacy"], (
        f"{kernels.active_tier()} kernel tier p50 replan "
        f"{p50['kernels'] * 1e3:.2f} ms vs legacy {p50['legacy'] * 1e3:.2f} ms "
        f"(> 10% regression)"
    )
    # Hard gate 3: >= 30% p50 replan reduction with the full stack on.
    assert reduction >= 0.30, (
        f"kernels+speculation only cut the p50 replan wall-clock by "
        f"{reduction:.0%} ({p50['legacy'] * 1e3:.2f} ms -> "
        f"{p50['kernels+speculation'] * 1e3:.2f} ms; target >= 30%)"
    )
    assert hits + misses > 0, "no speculative pre-solves were consumed"


def bench_simulation_online(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("online")), rounds=1, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_offline(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("offline")), rounds=1, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_swrpt(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("swrpt")), rounds=3, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_mct(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("mct")), rounds=3, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())
