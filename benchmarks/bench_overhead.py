"""Section 5.3 -- scheduling-overhead comparison.

The paper reports, for 15-minute workloads on 3-cluster platforms, the time
spent inside the scheduler: under 0.28 s for the on-line heuristics, 0.54 s
for the off-line optimal algorithm, 0.23 s for Bender02 and 19.76 s for
Bender98 (which re-solves a full off-line optimal problem at every release
date).  Absolute values differ here (pure Python + scipy vs the authors' C
code) but the ordering -- list heuristics < Bender02 < on-line LP heuristics
~ off-line < Bender98 -- is reproduced, as is the reason for restricting
Bender98 to the smallest platforms.

This file also benchmarks one full simulation per strategy on a fixed
3-cluster instance, which is the per-strategy cost a user of the library
actually pays.
"""

from __future__ import annotations

from repro.experiments.overhead import scheduling_overhead
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.utils.textable import TextTable
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

from _bench_utils import write_artifact
from _bench_utils import bench_scale as _bench_scale


def bench_scheduling_overhead_comparison(benchmark):
    scale = _bench_scale()

    def run():
        return scheduling_overhead(
            scheduler_keys=("online", "online-edf", "online-egdf", "offline",
                            "bender02", "swrpt", "bender98"),
            scheduler_options={"bender98": {"max_jobs_per_resolution": 20}},
            n_clusters=3,
            n_databanks=3,
            availability=0.6,
            density=1.0,
            window=float(scale["window"]),
            max_jobs=int(scale["max_jobs"]),
            replicates=max(1, int(scale["replicates"])),
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    table = TextTable(
        headers=["Scheduler", "mean sched time (s)", "max sched time (s)",
                 "mean decisions", "instances"],
        float_format=".4f",
    )
    for record in records:
        table.add_row(record.cells())
    write_artifact("overhead_section53.txt", table.render())

    by_name = {r.scheduler: r for r in records}
    # Ordering of the paper: the list heuristic is the cheapest, Bender98 the
    # most expensive, and the LP-based strategies sit in between.
    assert by_name["SWRPT"].mean_scheduler_time <= by_name["Online"].mean_scheduler_time
    assert by_name["Bender98"].mean_scheduler_time >= by_name["Online"].mean_scheduler_time
    assert by_name["Bender98"].mean_scheduler_time >= by_name["Offline"].mean_scheduler_time
    assert by_name["Bender02"].mean_scheduler_time <= by_name["Bender98"].mean_scheduler_time


def _fixed_instance():
    scale = _bench_scale()
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(
        density=1.0, window=float(scale["window"]), max_jobs=int(scale["max_jobs"])
    )
    return generate_instance(platform_spec, workload_spec, rng=53)


def bench_simulation_online(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("online")), rounds=1, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_offline(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("offline")), rounds=1, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_swrpt(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("swrpt")), rounds=3, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())


def bench_simulation_mct(benchmark):
    instance = _fixed_instance()
    result = benchmark.pedantic(
        lambda: simulate(instance, make_scheduler("mct")), rounds=3, iterations=1
    )
    assert set(result.completions) == set(instance.jobs.ids())
