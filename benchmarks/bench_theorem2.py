"""Theorem 2 -- SWRPT is not (2 - eps)-competitive for sum-stretch.

Regenerates the Appendix A construction for a few epsilons, simulates SRPT
and SWRPT on it, and checks that the simulated sum-stretch values match the
closed forms of the proof and that the ratio exceeds 2 - eps once the train
of unit jobs is long enough.
"""

from __future__ import annotations

import pytest

from repro.theory.bounds import swrpt_competitive_gap
from repro.utils.textable import TextTable

from _bench_utils import write_artifact


def bench_theorem2_swrpt_gap(benchmark):
    cases = [(0.5, 400), (0.4, 400), (0.3, 600)]

    def run():
        return [swrpt_competitive_gap(eps, n_unit) for eps, n_unit in cases]

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    table = TextTable(
        headers=["epsilon", "l", "SRPT sum-S", "SWRPT sum-S", "ratio", "target 2-eps"]
    )
    for report in reports:
        table.add_row(
            [report.epsilon, report.n_unit_jobs, report.srpt_sum_stretch,
             report.swrpt_sum_stretch, report.ratio, report.target]
        )
    write_artifact("theorem2_swrpt_gap.txt", table.render())

    for report in reports:
        # Simulation matches the closed-form analysis of the proof.
        assert report.srpt_sum_stretch == pytest.approx(report.predicted_srpt, rel=1e-3)
        assert report.swrpt_sum_stretch == pytest.approx(report.predicted_swrpt, rel=1e-3)
        # And the competitive gap exceeds 2 - eps for these train lengths.
        assert report.ratio > report.target
