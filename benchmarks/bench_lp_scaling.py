"""Ablation -- cost of the System (1) / System (2) linear programs.

The off-line algorithm's complexity is polynomial but the constant matters in
practice (it is the reason the paper's Bender98 re-implementation was
restricted to 3-cluster platforms).  This ablation measures the cost of one
optimal max-stretch resolution and one System (2) re-optimization as a
function of the number of jobs and of capability classes, which documents the
scaled-down defaults used by the table benchmarks.
"""

from __future__ import annotations

import statistics

import pytest

from repro.lp.backends import highs_available, highs_source, make_backend, record_lp_probes
from repro.lp.incremental import ReplanContext
from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.lp.relaxation import reoptimize_allocation
from repro.schedulers.registry import make_scheduler
from repro.simulation.engine import simulate
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance

from _bench_utils import update_json_artifact


def _instance(n_clusters: int, n_jobs: int, seed: int = 11):
    platform_spec = PlatformSpec(
        n_clusters=n_clusters, processors_per_cluster=10,
        n_databanks=max(2, n_clusters // 2), availability=0.7,
    )
    workload_spec = WorkloadSpec(density=1.5, window=60.0, max_jobs=n_jobs)
    return generate_instance(platform_spec, workload_spec, rng=seed)


def bench_system1_small_platform(benchmark):
    instance = _instance(n_clusters=3, n_jobs=15)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system1_large_platform(benchmark):
    instance = _instance(n_clusters=10, n_jobs=15)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system1_more_jobs(benchmark):
    instance = _instance(n_clusters=3, n_jobs=30)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system2_reoptimization(benchmark):
    instance = _instance(n_clusters=3, n_jobs=20)
    problem = problem_from_instance(instance)
    best = minimize_max_weighted_flow(problem)

    reopt = benchmark.pedantic(
        lambda: reoptimize_allocation(problem, best.objective), rounds=1, iterations=1
    )
    for job in problem.jobs:
        assert reopt.work_for_job(job.job_id) == pytest.approx(job.remaining_work, rel=1e-5)


def bench_system1_warm_start(benchmark):
    """Warm-started milestone search vs a cold search on the same problem.

    The warm start (previous S*, as carried by the on-line ReplanContext)
    typically needs 2-3 LP probes instead of the cold gallop + binary
    search; results are identical because feasibility is monotone in the
    objective.
    """
    instance = _instance(n_clusters=3, n_jobs=30)
    problem = problem_from_instance(instance)
    cold = minimize_max_weighted_flow(problem)

    warm = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(
            problem, warm_start=cold.objective, skeleton_cache={}
        ),
        rounds=3,
        iterations=1,
    )
    assert warm.objective == cold.objective
    assert warm.allocations == cold.allocations


#: Timing rounds per (size, backend); the best round is recorded, which
#: symmetrically discards transient noise (GC, CPU migration) on shared CI
#: runners without biasing the scipy/HiGHS ratio.
_TIMING_ROUNDS = 3


def _resolution_with_backend(problem, backend_name: str):
    """Best-of-N full resolutions (System (1) search + System (2)).

    The milestone search is pinned to the legacy gallop so both backends
    walk the *same* probe sequence and the per-probe timing ratio isolates
    the solver backend: the certificate search would prune different probes
    on each backend (scipy produces no dual rays), skewing the per-probe
    means.  Probe *elimination* is gated separately by
    :func:`bench_certificate_probe_elimination`.
    """
    best = fastest = None
    for _ in range(_TIMING_ROUNDS):
        backend = make_backend(backend_name)
        try:
            with record_lp_probes() as stats:
                best = minimize_max_weighted_flow(
                    problem, backend=backend, search="gallop"
                )
                reoptimize_allocation(problem, best.objective, backend=backend)
        finally:
            backend.close()
        if fastest is None or stats.solve_seconds < fastest.solve_seconds:
            fastest = stats
    return best, fastest


def bench_solver_backend_comparison(benchmark):
    """Per-probe LP solve time: one-shot scipy vs persistent HiGHS backend.

    Runs the complete milestone search plus the System (2) re-optimization
    at increasing job counts with both backends, records the per-size probe
    counts and solve times to ``BENCH_lp.json`` (uploaded by CI so the perf
    trajectory is tracked across PRs), and enforces the acceptance target:
    at the largest size (>= 60 jobs in the LP) the persistent backend --
    which warm-starts dual simplex from the previous probe's transplanted
    basis instead of re-factorizing from scratch -- must at least halve the
    per-probe solve time while reproducing the scipy objective exactly
    within tolerance.  Each (size, backend) cell is timed best-of-N
    (symmetric for both backends) so a transient stall on a noisy CI runner
    cannot flake the ratio; ~2.4x is the locally observed margin.
    """
    # Density/window chosen so the largest instance saturates its 60-job cap
    # (the regime where the ROADMAP identifies the LP solve as the floor).
    sizes = (15, 30, 60)
    problems = {}
    for n_jobs in sizes:
        platform_spec = PlatformSpec(
            n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6,
        )
        workload_spec = WorkloadSpec(density=3.0, window=45.0, max_jobs=n_jobs)
        instance = generate_instance(platform_spec, workload_spec, rng=11)
        problems[n_jobs] = problem_from_instance(instance)

    backends = ["scipy"] + (["highs"] if highs_available() else [])

    def run():
        rows = []
        for n_jobs in sizes:
            problem = problems[n_jobs]
            for backend_name in backends:
                best, stats = _resolution_with_backend(problem, backend_name)
                rows.append(
                    {
                        "n_jobs": len(problem.jobs),
                        "backend": backend_name,
                        "probes": stats.n_probes,
                        "solve_ms": round(stats.solve_seconds * 1e3, 3),
                        "per_probe_ms": round(stats.per_probe_seconds * 1e3, 4),
                        "objective": best.objective,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    largest = max(r["n_jobs"] for r in rows)
    speedup = None
    if highs_available():
        per_probe = {
            r["backend"]: r["per_probe_ms"] for r in rows if r["n_jobs"] == largest
        }
        speedup = per_probe["scipy"] / per_probe["highs"]
    update_json_artifact(
        "BENCH_lp.json",
        "backend_comparison",
        {
            "benchmark": "bench_solver_backend_comparison",
            "highs_available": highs_available(),
            "highs_source": highs_source(),
            "timing_rounds": _TIMING_ROUNDS,
            "per_size": rows,
            "largest_n_jobs": largest,
            "per_probe_speedup_at_largest": speedup,
        },
    )

    # Both backends walk the same monotone feasibility lattice, so the probe
    # counts and objectives must agree regardless of solver internals.
    for n_jobs in sizes:
        by_backend = {r["backend"]: r for r in rows if r["n_jobs"] == len(problems[n_jobs].jobs)}
        if "highs" in by_backend:
            assert by_backend["highs"]["objective"] == pytest.approx(
                by_backend["scipy"]["objective"], rel=1e-9
            )
    if not highs_available():
        pytest.skip("highspy (and scipy-vendored HiGHS) unavailable; scipy baseline recorded")
    assert largest >= 60, f"largest LP only has {largest} jobs"
    assert speedup >= 2.0, (
        f"persistent HiGHS backend only {speedup:.2f}x faster per probe at "
        f"{largest} jobs (target: >= 2x)"
    )


def _record_replan_problems(instance, backend_name: str):
    """The System (1) problems of one online run (the replay inputs).

    Replaying a recorded problem stream -- instead of comparing two live
    simulations -- keeps the probe-count comparison apples to apples: live
    runs diverge after the first System (2) degenerate alternate optimum
    (different executed allocations change every later problem), while the
    replay solves the *same* problems under both search strategies.
    """
    problems = []
    original = ReplanContext.solve_max_stretch

    def recording(self, problem):
        problems.append(problem)
        return original(self, problem)

    ReplanContext.solve_max_stretch = recording
    try:
        simulate(instance, make_scheduler("online", solver_backend=backend_name))
    finally:
        ReplanContext.solve_max_stretch = original
    return problems


def _replay_search(instance, problems, backend_name: str, mode: str):
    """Solve the recorded problems through a warm-carried context; per-replan stats."""
    context = ReplanContext(
        instance, solver_backend=backend_name, milestone_search=mode
    )
    objectives = []
    try:
        with record_lp_probes() as stats:
            for problem in problems:
                objectives.append(context.solve_max_stretch(problem).objective)
    finally:
        context.close()
    return objectives, stats


def bench_certificate_probe_elimination(benchmark):
    """Certificate-guided search vs the legacy gallop: LP probes per replan.

    The acceptance gate of the probe-elimination subsystem: on the dense
    60-job workload (the regime where the LP solve is the scheduling floor),
    the certificate-guided parametric search must cut the *median* number of
    LP probes actually solved per replan by >= 30% on the persistent HiGHS
    backend -- dual-ray bounds jump the upward gallop past refuted
    milestones, and the interior-optimum re-check of the winning probe
    eliminates the downward confirmation solves -- while returning
    bit-identical S* milestone outcomes (within solver tolerance) on every
    replan.  Both strategies replay the same recorded problem stream, so the
    comparison is exact; the per-replan histogram lands in ``BENCH_lp.json``
    (uploaded by CI).
    """
    platform_spec = PlatformSpec(
        n_clusters=3, processors_per_cluster=10, n_databanks=3, availability=0.6
    )
    workload_spec = WorkloadSpec(density=3.0, window=45.0, max_jobs=60)
    instance = generate_instance(platform_spec, workload_spec, rng=11)
    assert instance.n_jobs >= 50
    backend_name = "highs" if highs_available() else "scipy"
    problems = _record_replan_problems(instance, backend_name)
    assert len(problems) >= 30, f"only {len(problems)} replans recorded"

    def run():
        gallop = _replay_search(instance, problems, backend_name, "gallop")
        certificate = _replay_search(instance, problems, backend_name, "certificate")
        return gallop, certificate

    (g_obj, g_stats), (c_obj, c_stats) = benchmark.pedantic(run, rounds=1, iterations=1)

    # Hard gate 1: bit-identical S* milestone outcomes (within solver
    # tolerance) on every replan.  1e-8 is the documented HiGHS comparison
    # tolerance: the two strategies reach the winning LP through different
    # warm bases, which may land on different (equally optimal) degenerate
    # vertices; observed replay agreement is ~1e-15.
    assert len(g_obj) == len(c_obj) == len(problems)
    for replan, (a, b) in enumerate(zip(g_obj, c_obj)):
        assert b == pytest.approx(a, rel=1e-8), (
            f"S* diverged at replan {replan}: gallop={a!r} certificate={b!r}"
        )

    g_solved = [solved for solved, _skipped in g_stats.searches]
    c_solved = [solved for solved, _skipped in c_stats.searches]
    assert len(g_solved) == len(c_solved) == len(problems)
    g_median = statistics.median(g_solved)
    c_median = statistics.median(c_solved)
    reduction = 1.0 - c_median / g_median
    update_json_artifact(
        "BENCH_lp.json",
        "probe_elimination",
        {
            "benchmark": "bench_certificate_probe_elimination",
            "backend": backend_name,
            "n_jobs": instance.n_jobs,
            "n_replans": len(problems),
            "gallop": {
                "total_solved": sum(g_solved),
                "median_solved_per_replan": g_median,
                "histogram": g_stats.histogram(),
            },
            "certificate": {
                "total_solved": sum(c_solved),
                "median_solved_per_replan": c_median,
                "histogram": c_stats.histogram(),
            },
            "median_probe_reduction": reduction,
        },
    )

    if backend_name != "highs":
        pytest.skip("HiGHS bindings unavailable; scipy probe baseline recorded")
    # Hard gate 2: >= 30% median reduction in LP probes actually solved per
    # replan at 60 jobs on the highs backend.
    assert reduction >= 0.30, (
        f"certificate search only cut the median probes/replan by "
        f"{reduction:.0%} ({g_median} -> {c_median}; target >= 30%)"
    )


def bench_milestone_enumeration(benchmark):
    from repro.lp.milestones import enumerate_milestones

    instance = _instance(n_clusters=3, n_jobs=40)
    problem = problem_from_instance(instance)
    milestones = benchmark(enumerate_milestones, problem)
    n = len(problem.jobs)
    assert 0 < len(milestones) <= n * (n - 1)
    assert list(milestones) == sorted(milestones)
