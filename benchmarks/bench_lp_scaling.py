"""Ablation -- cost of the System (1) / System (2) linear programs.

The off-line algorithm's complexity is polynomial but the constant matters in
practice (it is the reason the paper's Bender98 re-implementation was
restricted to 3-cluster platforms).  This ablation measures the cost of one
optimal max-stretch resolution and one System (2) re-optimization as a
function of the number of jobs and of capability classes, which documents the
scaled-down defaults used by the table benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lp.maxstretch import minimize_max_weighted_flow
from repro.lp.problem import problem_from_instance
from repro.lp.relaxation import reoptimize_allocation
from repro.workload.generator import PlatformSpec, WorkloadSpec, generate_instance


def _instance(n_clusters: int, n_jobs: int, seed: int = 11):
    platform_spec = PlatformSpec(
        n_clusters=n_clusters, processors_per_cluster=10,
        n_databanks=max(2, n_clusters // 2), availability=0.7,
    )
    workload_spec = WorkloadSpec(density=1.5, window=60.0, max_jobs=n_jobs)
    return generate_instance(platform_spec, workload_spec, rng=seed)


def bench_system1_small_platform(benchmark):
    instance = _instance(n_clusters=3, n_jobs=15)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system1_large_platform(benchmark):
    instance = _instance(n_clusters=10, n_jobs=15)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system1_more_jobs(benchmark):
    instance = _instance(n_clusters=3, n_jobs=30)
    problem = problem_from_instance(instance)
    solution = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(problem), rounds=1, iterations=1
    )
    assert solution.objective >= 1.0 - 1e-6


def bench_system2_reoptimization(benchmark):
    instance = _instance(n_clusters=3, n_jobs=20)
    problem = problem_from_instance(instance)
    best = minimize_max_weighted_flow(problem)

    reopt = benchmark.pedantic(
        lambda: reoptimize_allocation(problem, best.objective), rounds=1, iterations=1
    )
    for job in problem.jobs:
        assert reopt.work_for_job(job.job_id) == pytest.approx(job.remaining_work, rel=1e-5)


def bench_system1_warm_start(benchmark):
    """Warm-started milestone search vs a cold search on the same problem.

    The warm start (previous S*, as carried by the on-line ReplanContext)
    typically needs 2-3 LP probes instead of the cold gallop + binary
    search; results are identical because feasibility is monotone in the
    objective.
    """
    instance = _instance(n_clusters=3, n_jobs=30)
    problem = problem_from_instance(instance)
    cold = minimize_max_weighted_flow(problem)

    warm = benchmark.pedantic(
        lambda: minimize_max_weighted_flow(
            problem, warm_start=cold.objective, skeleton_cache={}
        ),
        rounds=3,
        iterations=1,
    )
    assert warm.objective == cold.objective
    assert warm.allocations == cold.allocations


def bench_milestone_enumeration(benchmark):
    from repro.lp.milestones import enumerate_milestones

    instance = _instance(n_clusters=3, n_jobs=40)
    problem = problem_from_instance(instance)
    milestones = benchmark(enumerate_milestones, problem)
    n = len(problem.jobs)
    assert 0 < len(milestones) <= n * (n - 1)
    assert list(milestones) == sorted(milestones)
