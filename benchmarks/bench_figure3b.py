"""Figure 3(b) -- sum-stretch gain of the optimized on-line heuristic.

The paper plots, against the workload density, the average relative gain in
sum-stretch obtained by adding the System (2) re-optimization on top of the
plain System (1) schedule.  The gain is positive over the whole range and
grows with the density (up to ~14-18 % at density 4-5), which is the
motivation for the optimized variant.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.figures import figure3b
from repro.utils.textable import TextTable

from _bench_utils import write_artifact


def bench_figure3b_series(benchmark, figure3_points):
    series = benchmark.pedantic(lambda: figure3b(figure3_points), rounds=1, iterations=1)

    table = TextTable(headers=["density", "sum-stretch gain (%)"])
    for density, gain in series:
        table.add_row([density, gain])
    write_artifact("figure3b.txt", table.render())

    assert len(series) >= 5
    gains = np.array([g for _, g in series if math.isfinite(g)])
    assert gains.size >= 5
    # The optimization never degrades the sum-stretch on average, and the gain
    # at the high-density end exceeds the gain at the low-density end.
    assert float(np.mean(gains)) >= -1.0
    low = np.mean([g for d, g in series[:3] if math.isfinite(g)])
    high = np.mean([g for d, g in series[-3:] if math.isfinite(g)])
    assert high >= low - 2.0
