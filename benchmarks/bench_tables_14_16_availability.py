"""Tables 14-16 -- statistics partitioned by databank availability (30/60/90 %).

Paper trend: higher availability (more replication) gives the scheduler more
freedom, which widens the gap between stretch-aware strategies and the greedy
ones (MCT mean max-stretch degradation 14.6 at 30 % vs 39.4 at 90 %), while
Offline/Online remain at their optimal level throughout.
"""

from __future__ import annotations

from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import tables_by_availability

from _bench_utils import write_artifact


def bench_tables_by_availability(benchmark, campaign_results):
    tables = benchmark.pedantic(
        lambda: tables_by_availability(campaign_results), rounds=1, iterations=1
    )
    rendered = "\n\n".join(table.render() for table in tables.values())
    write_artifact("tables_14_16_availability.txt", rendered)
    assert len(tables) >= 2

    for availability in tables:
        subset = campaign_results.by_availability(availability)
        rows = {r.scheduler: r for r in summarize(compute_degradations(subset))}
        assert rows["Offline"].max_stretch_mean <= 1.05
        assert rows["Online"].max_stretch_mean <= 1.2
        worst = max(rows.values(), key=lambda r: r.max_stretch_mean).scheduler
        assert worst in ("MCT", "MCT-Div")
