"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's evaluation
section on a *scaled-down* campaign (shorter submission windows and capped
job counts) so that the whole suite runs in minutes on a laptop.  The scale
is controlled by environment variables:

=============================  ===========================================================
``REPRO_BENCH_PROFILE``        ``quick`` (default) runs a reduced factorial design;
                               ``paper`` runs the full 162-configuration design.
``REPRO_BENCH_REPLICATES``     instances per configuration (default 1).
``REPRO_BENCH_MAX_JOBS``       cap on jobs per instance (default 12).
``REPRO_BENCH_WINDOW``         submission window in seconds (default 20).
``REPRO_BENCH_WORKERS``        worker processes for the campaign (default 1).
=============================  ===========================================================

The campaign is executed once per benchmark session (session-scoped fixture)
and shared by all table benchmarks; the rendered tables are also written to
``benchmarks/_artifacts/`` so the regenerated numbers can be inspected after
the run and compared against EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import figure3_configurations
from repro.experiments.figures import run_figure3_sweep
from repro.experiments.io import save_records_csv
from repro.experiments.runner import run_campaign

from _bench_utils import (
    ARTIFACT_DIR,
    TABLE_SCHEDULERS,
    bench_scale,
    campaign_configurations,
)


@pytest.fixture(scope="session")
def campaign_results():
    """Run the (scaled-down) Section 5.3 campaign once per benchmark session."""
    scale = bench_scale()
    configs = campaign_configurations()
    results = run_campaign(
        configs,
        scheduler_keys=TABLE_SCHEDULERS,
        replicates=scale["replicates"],
        base_seed=2006,
        n_workers=scale["workers"],
    )
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    save_records_csv(results, ARTIFACT_DIR / "campaign_records.csv")
    return results


@pytest.fixture(scope="session")
def figure3_points():
    """Run the Figure 3 density sweep once per benchmark session."""
    scale = bench_scale()
    densities = (0.0125, 0.05, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0)
    if scale["profile"] == "paper":
        densities = (0.0125, 0.025, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0)
    configs = figure3_configurations(
        densities=densities,
        window=scale["window"],
        max_jobs=scale["max_jobs"],
    )
    replicates = max(2, int(scale["replicates"]))
    return run_figure3_sweep(configs, replicates=replicates, base_seed=1998)
