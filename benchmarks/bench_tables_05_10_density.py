"""Tables 5-10 -- statistics partitioned by workload density (0.75 ... 3.0).

The paper's trend: as the workload density grows, every heuristic drifts away
from the optimal max-stretch (Online mean degradation 1.0008 at density 0.75
vs 1.0063 at density 3.0; SWRPT 1.04 -> 1.16; Bender02 2.6 -> 4.5), while the
relative ordering of the strategies is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.statistics import compute_degradations, summarize
from repro.experiments.tables import tables_by_density

from _bench_utils import write_artifact


def bench_tables_by_density(benchmark, campaign_results):
    tables = benchmark.pedantic(
        lambda: tables_by_density(campaign_results), rounds=1, iterations=1
    )
    rendered = "\n\n".join(table.render() for table in tables.values())
    write_artifact("tables_05_10_density.txt", rendered)
    densities = sorted(tables)
    assert len(densities) >= 3

    # Ordering preserved at every density level.
    per_density_rows = {}
    for density in densities:
        subset = campaign_results.by_density(density)
        rows = {r.scheduler: r for r in summarize(compute_degradations(subset))}
        per_density_rows[density] = rows
        assert rows["Offline"].max_stretch_mean <= 1.05
        worst = max(rows.values(), key=lambda r: r.max_stretch_mean).scheduler
        assert worst in ("MCT", "MCT-Div")

    # The list heuristics degrade (weakly) with the load: compare the lowest
    # and highest density levels on average over the non-LP strategies.
    lo, hi = densities[0], densities[-1]
    drift = np.mean(
        [
            per_density_rows[hi][name].max_stretch_mean
            - per_density_rows[lo][name].max_stretch_mean
            for name in ("SWRPT", "SRPT", "SPT")
        ]
    )
    assert drift >= -0.2
