"""Helpers shared by the benchmark files (scale knobs, artifact writing).

Kept separate from ``conftest.py`` so that benchmark modules can import them
under an unambiguous module name even when the test suite and the benchmark
suite are collected in the same pytest session.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.config import paper_configurations

ARTIFACT_DIR = Path(__file__).resolve().parent / "_artifacts"

#: Schedulers included in the table campaign (Bender98 is benchmarked
#: separately in bench_overhead.py, as in the paper, because it is
#: intractable on the larger platforms).
TABLE_SCHEDULERS = (
    "offline",
    "online",
    "online-edf",
    "online-egdf",
    "swrpt",
    "srpt",
    "spt",
    "bender02",
    "mct-div",
    "mct",
)


def bench_scale() -> dict[str, object]:
    """Read the benchmark scale knobs from the environment."""
    return {
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "quick"),
        "replicates": int(os.environ.get("REPRO_BENCH_REPLICATES", "1")),
        "max_jobs": int(os.environ.get("REPRO_BENCH_MAX_JOBS", "12")),
        "window": float(os.environ.get("REPRO_BENCH_WINDOW", "20")),
        "workers": int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    }


def campaign_configurations():
    """The experimental design used by the table benchmarks."""
    scale = bench_scale()
    if scale["profile"] == "paper":
        return paper_configurations(window=scale["window"], max_jobs=scale["max_jobs"])
    # Quick profile: keep all three platform sizes (the dominant factor) and a
    # representative subset of the other levels.
    return paper_configurations(
        sites=(3, 10, 20),
        databanks=(3, 10),
        availabilities=(0.3, 0.9),
        densities=(0.75, 1.5, 3.0),
        window=scale["window"],
        max_jobs=scale["max_jobs"],
    )


def write_artifact(name: str, content: str) -> Path:
    """Persist a rendered table/series next to the benchmark run."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(content + "\n")
    return path


def read_json_baseline(name: str) -> dict:
    """Load a committed JSON baseline, failing loudly when it is absent.

    The JSON baselines (``BENCH_lp.json``, ``BENCH_campaign.json``) are
    committed to the tree and referenced by ROADMAP/CHANGES/CI; a missing or
    corrupt file used to be silently papered over (the merge started from
    ``{}``), which let a referenced baseline drop out of the tree unnoticed.
    Regenerate with the benchmark that owns the section and commit the file.
    """
    path = ARTIFACT_DIR / name
    if not path.exists():
        raise FileNotFoundError(
            f"referenced benchmark baseline {path} is absent; run the "
            f"benchmarks that own it and commit the regenerated file "
            f"(sections are merged via update_json_artifact)"
        )
    existing = json.loads(path.read_text())
    if not isinstance(existing, dict):
        raise ValueError(f"benchmark baseline {path} is not a JSON object")
    return existing


def write_json_artifact(name: str, payload: object) -> Path:
    """Persist a machine-readable baseline (e.g. ``BENCH_lp.json``).

    JSON artifacts are committed and uploaded by CI so the perf trajectory
    (per-size LP probe counts, solve times, backend speedups, replan
    latencies) can be compared across PRs instead of living only in
    free-text benchmark logs.  Overwrites the whole file; benchmarks that
    own one *section* of a shared baseline go through
    :func:`update_json_artifact`, which requires the committed file to be
    present.
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_json_artifact(
    name: str, section: str, payload: object, *, require_baseline: bool = True
) -> Path:
    """Merge ``payload`` under ``section`` of a committed JSON baseline.

    Lets several benchmarks share one baseline file (``BENCH_lp.json`` holds
    the backend comparison, the probe-elimination histogram and the replan
    latencies) without clobbering each other regardless of execution order.
    The committed baseline must exist (see :func:`read_json_baseline`);
    ``require_baseline=False`` is the bootstrap escape hatch for generating
    a brand-new baseline file.
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    if require_baseline or path.exists():
        merged = read_json_baseline(name)
    else:
        merged = {}
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path
