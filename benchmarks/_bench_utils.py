"""Helpers shared by the benchmark files (scale knobs, artifact writing).

Kept separate from ``conftest.py`` so that benchmark modules can import them
under an unambiguous module name even when the test suite and the benchmark
suite are collected in the same pytest session.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.experiments.config import paper_configurations

ARTIFACT_DIR = Path(__file__).resolve().parent / "_artifacts"

#: Schedulers included in the table campaign (Bender98 is benchmarked
#: separately in bench_overhead.py, as in the paper, because it is
#: intractable on the larger platforms).
TABLE_SCHEDULERS = (
    "offline",
    "online",
    "online-edf",
    "online-egdf",
    "swrpt",
    "srpt",
    "spt",
    "bender02",
    "mct-div",
    "mct",
)


def bench_scale() -> dict[str, object]:
    """Read the benchmark scale knobs from the environment."""
    return {
        "profile": os.environ.get("REPRO_BENCH_PROFILE", "quick"),
        "replicates": int(os.environ.get("REPRO_BENCH_REPLICATES", "1")),
        "max_jobs": int(os.environ.get("REPRO_BENCH_MAX_JOBS", "12")),
        "window": float(os.environ.get("REPRO_BENCH_WINDOW", "20")),
        "workers": int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
    }


def campaign_configurations():
    """The experimental design used by the table benchmarks."""
    scale = bench_scale()
    if scale["profile"] == "paper":
        return paper_configurations(window=scale["window"], max_jobs=scale["max_jobs"])
    # Quick profile: keep all three platform sizes (the dominant factor) and a
    # representative subset of the other levels.
    return paper_configurations(
        sites=(3, 10, 20),
        databanks=(3, 10),
        availabilities=(0.3, 0.9),
        densities=(0.75, 1.5, 3.0),
        window=scale["window"],
        max_jobs=scale["max_jobs"],
    )


def write_artifact(name: str, content: str) -> Path:
    """Persist a rendered table/series next to the benchmark run."""
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(content + "\n")
    return path


def write_json_artifact(name: str, payload: object) -> Path:
    """Persist a machine-readable baseline (e.g. ``BENCH_lp.json``).

    JSON artifacts are uploaded by CI so the perf trajectory (per-size LP
    probe counts, solve times, backend speedups) can be compared across PRs
    instead of living only in free-text benchmark logs.
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_json_artifact(name: str, section: str, payload: object) -> Path:
    """Merge ``payload`` under ``section`` of an existing JSON artifact.

    Lets several benchmarks share one baseline file (``BENCH_lp.json`` holds
    both the backend comparison and the probe-elimination histogram) without
    clobbering each other regardless of execution order.
    """
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    path = ARTIFACT_DIR / name
    merged: dict = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
            if isinstance(existing, dict):
                merged = existing
        except json.JSONDecodeError:
            pass
    merged[section] = payload
    path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return path
