"""Figure 3(a) -- max-stretch degradation of the optimized vs non-optimized on-line heuristic.

The paper plots, against the workload density (0.0125 ... 4.0), the average
max-stretch degradation from the off-line optimal of (i) the non-optimized
on-line heuristic (System (1) only) and (ii) the optimized heuristic
(System (1) + System (2)).  Both stay below ~2.5 % on average over the whole
density range, and the optimization does not hurt the max-stretch.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.figures import figure3a
from repro.utils.textable import TextTable

from _bench_utils import write_artifact


def bench_figure3a_series(benchmark, figure3_points):
    series = benchmark.pedantic(lambda: figure3a(figure3_points), rounds=1, iterations=1)

    table = TextTable(headers=["density", "non-optimized degr. (%)", "optimized degr. (%)"])
    for density, non_opt, opt in series:
        table.add_row([density, non_opt, opt])
    write_artifact("figure3a.txt", table.render())

    assert len(series) >= 5
    densities = [p[0] for p in series]
    assert densities == sorted(densities)
    non_opt = np.array([p[1] for p in series])
    opt = np.array([p[2] for p in series])
    # Degradations are percentages >= 0 and stay small on average for both
    # versions (the paper reports at most a few percent).
    assert np.all(non_opt >= -1e-6)
    assert np.all(opt >= -1e-6)
    assert float(np.mean(opt)) < 25.0
    # The System (2) re-optimization must not make the max-stretch worse on
    # average than the non-optimized version.
    assert float(np.mean(opt)) <= float(np.mean(non_opt)) + 2.0
