"""Theorem 1 -- sum-oriented schedulers starve the large job.

Not a table of the paper, but the quantitative content of Theorem 1: on the
instance made of one job of size Delta followed by k unit jobs, any
sum-stretch-competitive algorithm reaches a max-stretch of 1 + k/Delta
(starvation), arbitrarily larger than the 1 + Delta achievable by a
max-stretch-oriented schedule once k >> Delta^2.
"""

from __future__ import annotations

import pytest

from repro.theory.starvation import starvation_analysis
from repro.utils.textable import TextTable

from _bench_utils import write_artifact


def bench_theorem1_starvation(benchmark):
    delta, k = 4.0, 96

    report = benchmark.pedantic(
        lambda: starvation_analysis(delta, k, ["srpt", "swrpt", "fcfs", "online"]),
        rounds=1,
        iterations=1,
    )

    table = TextTable(headers=["Scheduler", "max-stretch", "sum-stretch"])
    table.add_row(["(sum-friendly reference)", report.sum_friendly_max_stretch,
                   report.sum_friendly_sum_stretch])
    table.add_row(["(max-friendly reference)", report.max_friendly_max_stretch,
                   report.max_friendly_sum_stretch])
    for name, (max_s, sum_s) in report.measured.items():
        table.add_row([name, max_s, sum_s])
    write_artifact("theorem1_starvation.txt", table.render())

    srpt_max, srpt_sum = report.measured["srpt"]
    online_max, _ = report.measured["online"]
    fcfs_max, fcfs_sum = report.measured["fcfs"]
    # SRPT/SWRPT reach the starvation level 1 + k/Delta exactly.
    assert srpt_max == pytest.approx(1 + k / delta)
    # FCFS (large job first) realizes the 1 + Delta bound of the proof.
    assert fcfs_max == pytest.approx(1 + delta)
    # The LP-based on-line heuristic avoids the starvation of the large job.
    assert online_max < srpt_max
    # ... while the sum-oriented schedule keeps the best sum-stretch.
    assert srpt_sum < fcfs_sum
    assert report.max_stretch_blowup > 1.0
